package realnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/simnet"
)

// shaperHarness boots a small live loopback cluster with per-node
// receive counters for the shaper edge-case tests.
type shaperHarness struct {
	t       *testing.T
	cluster *Cluster
	mu      sync.Mutex
	recv    map[simnet.NodeID]int
}

func newShaperHarness(t *testing.T, ids ...simnet.NodeID) *shaperHarness {
	t.Helper()
	RegisterWireType(pingMsg{})
	h := &shaperHarness{
		t:       t,
		cluster: NewCluster(ClusterConfig{Seed: 7}),
		recv:    make(map[simnet.NodeID]int),
	}
	for _, id := range ids {
		id := id
		n, err := h.cluster.AddNode(id)
		if err != nil {
			t.Fatal(err)
		}
		n.OnMessage(func(simnet.NodeID, simnet.Message) {
			h.mu.Lock()
			h.recv[id]++
			h.mu.Unlock()
		})
	}
	if err := h.cluster.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.cluster.Close)
	return h
}

func (h *shaperHarness) received(id simnet.NodeID) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.recv[id]
}

func (h *shaperHarness) waitFor(what string, budget time.Duration, cond func() bool) {
	h.t.Helper()
	for deadline := time.Now().Add(budget); time.Now().Before(deadline); {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("timed out waiting for %s", what)
}

// TestShaperPartitionDuringDelayedPacket cuts a partition while a
// packet sits in a link's delay queue: the delivery-time recheck must
// drop it, exactly as simnet drops in-flight messages when the
// partition lands before delivery.
func TestShaperPartitionDuringDelayedPacket(t *testing.T) {
	h := newShaperHarness(t, "a", "b")
	f := h.cluster.Fabric()
	f.DegradeLink("a", "b", 200*time.Millisecond, 0)

	a := h.cluster.Node("a")
	if !a.Send("b", pingMsg{N: 1}) {
		t.Fatal("send into delay queue refused")
	}
	// Partition before the 200ms delay elapses.
	f.Partition([]simnet.NodeID{"a"}, []simnet.NodeID{"b"})
	time.Sleep(300 * time.Millisecond)
	if got := h.received("b"); got != 0 {
		t.Fatalf("delayed packet crossed a partition: b received %d", got)
	}
	if s := a.NetStats(); s.Dropped == 0 || s.Delayed != 1 {
		t.Fatalf("stats = %+v, want the delayed packet counted and dropped", s)
	}

	// Heal: fresh traffic flows again (the queued packet stays dead).
	f.HealPartition()
	h.waitFor("traffic after heal", 2*time.Second, func() bool {
		a.Send("b", pingMsg{N: 2})
		return h.received("b") > 0
	})
}

// TestLinkRestoreWithoutDegrade exercises KindLinkRestore with no prior
// degrade: a pure no-op, traffic keeps flowing.
func TestLinkRestoreWithoutDegrade(t *testing.T) {
	h := newShaperHarness(t, "a", "b")
	inj := h.cluster.Injector()
	defer inj.Stop()
	inj.Inject(fault.Event{Kind: fault.KindLinkRestore, From: "a", To: "b"})

	a := h.cluster.Node("a")
	h.waitFor("traffic after bare restore", 2*time.Second, func() bool {
		a.Send("b", pingMsg{N: 1})
		return h.received("b") > 0
	})
	if s := a.NetStats(); s.Shaped != 0 || s.Dropped != 0 {
		t.Fatalf("bare restore shaped traffic: %+v", s)
	}
	if lg := inj.Log(); len(lg) != 1 || lg[0].Kind != fault.KindLinkRestore {
		t.Fatalf("restore not logged: %v", lg)
	}
}

// TestOverlappingPartitionsSingleHeal layers two partitions (the second
// replaces the first, simnet semantics) and heals once: one
// KindPartitionEnd must restore full reachability.
func TestOverlappingPartitionsSingleHeal(t *testing.T) {
	h := newShaperHarness(t, "a", "b", "c")
	inj := h.cluster.Injector()
	defer inj.Stop()

	inj.Inject(fault.Event{Kind: fault.KindPartitionStart, Groups: [][]simnet.NodeID{{"a"}, {"b", "c"}}})
	inj.Inject(fault.Event{Kind: fault.KindPartitionStart, Groups: [][]simnet.NodeID{{"a", "b"}, {"c"}}})

	// Second partition replaced the first: a↔b reachable, c cut off.
	if !h.cluster.Reachable("a", "b") {
		t.Fatal("replacement partition still isolates a from b")
	}
	if h.cluster.Reachable("b", "c") || h.cluster.Reachable("a", "c") {
		t.Fatal("c reachable through layered partitions")
	}
	a, c := h.cluster.Node("a"), h.cluster.Node("c")
	if a.Send("c", pingMsg{N: 1}) {
		t.Fatal("send across partition succeeded")
	}
	if c.Send("a", pingMsg{N: 1}) {
		t.Fatal("send across partition succeeded (reverse)")
	}

	// One heal undoes everything.
	inj.Inject(fault.Event{Kind: fault.KindPartitionEnd})
	if !h.cluster.Reachable("a", "c") || !h.cluster.Reachable("b", "c") {
		t.Fatal("single PartitionEnd did not heal layered partitions")
	}
	h.waitFor("a→c traffic after heal", 2*time.Second, func() bool {
		a.Send("c", pingMsg{N: 2})
		return h.received("c") > 0
	})
}

// TestCrashPlusPartitionSameNode composes a crash with a partition on
// one node: recovery from the crash must not pierce the still-standing
// partition, and healing the partition alone must not revive the
// crashed node.
func TestCrashPlusPartitionSameNode(t *testing.T) {
	h := newShaperHarness(t, "a", "b")
	inj := h.cluster.Injector()
	defer inj.Stop()

	inj.Inject(fault.Event{Kind: fault.KindCrash, Node: "b"})
	inj.Inject(fault.Event{Kind: fault.KindPartitionStart, Groups: [][]simnet.NodeID{{"a"}, {"b"}}})

	b := h.cluster.Node("b")
	if !b.Down() {
		t.Fatal("crash not applied")
	}
	// Recover the crash; the partition still stands.
	inj.Inject(fault.Event{Kind: fault.KindRecover, Node: "b"})
	if b.Down() {
		t.Fatal("recover not applied")
	}
	a := h.cluster.Node("a")
	if a.Send("b", pingMsg{N: 1}) {
		t.Fatal("send crossed a partition after crash recovery")
	}
	time.Sleep(50 * time.Millisecond)
	if got := h.received("b"); got != 0 {
		t.Fatalf("partitioned node received %d datagrams", got)
	}

	// Heal: now traffic flows.
	inj.Inject(fault.Event{Kind: fault.KindPartitionEnd})
	h.waitFor("traffic after heal", 2*time.Second, func() bool {
		a.Send("b", pingMsg{N: 2})
		return h.received("b") > 0
	})
}

// TestSeededLossIsReproducible sends the same traffic through a lossy
// link on two clusters sharing a seed and asserts the surviving
// pattern is identical — the seeded-loss reproducibility contract.
func TestSeededLossIsReproducible(t *testing.T) {
	pattern := func() []bool {
		h := newShaperHarness(t, "a", "b")
		h.cluster.Fabric().DegradeLink("a", "b", 0, 0.5)
		a := h.cluster.Node("a")
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, a.Send("b", pingMsg{N: i}))
		}
		return out
	}
	p1, p2 := pattern(), pattern()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("loss pattern diverged at packet %d with identical seeds", i)
		}
	}
	var kept int
	for _, ok := range p1 {
		if ok {
			kept++
		}
	}
	if kept == 0 || kept == len(p1) {
		t.Fatalf("loss 0.5 kept %d/%d packets — shaper not applying loss", kept, len(p1))
	}
}
