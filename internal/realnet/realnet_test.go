package realnet

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/dataflow"
	"repro/internal/gossip"
	"repro/internal/simnet"
	"repro/internal/space"
)

// registerOnce makes the gossip wire types encodable exactly once per
// test binary.
var registered = false

func registerWire() {
	if !registered {
		gossip.RegisterWire(RegisterWireType)
		registered = true
	}
}

// gossipCluster starts n gossip nodes over localhost UDP, all seeded
// through node 0, and returns nodes plus protocols and a cleanup.
func gossipCluster(t *testing.T, n int) ([]*Node, []*gossip.Protocol) {
	t.Helper()
	registerWire()
	cfg := gossip.Config{
		ProbeInterval:       50 * time.Millisecond,
		ProbeTimeout:        20 * time.Millisecond,
		SuspicionTimeout:    300 * time.Millisecond,
		AntiEntropyInterval: 200 * time.Millisecond,
	}
	nodes := make([]*Node, n)
	protos := make([]*gossip.Protocol, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = simnet.NodeID(string(rune('a' + i)))
		node, err := NewNode(ids[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		protos[i] = gossip.New(node, cfg)
	}
	// Full mesh of peer addresses.
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				if err := a.AddPeer(ids[j], b.Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i, node := range nodes {
		node.Run()
		i := i
		if !node.Do(func() {
			if i == 0 {
				protos[i].Start()
			} else {
				protos[i].Start(ids[0])
			}
		}) {
			t.Fatal("node refused Do")
		}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})
	return nodes, protos
}

// aliveCount reads a protocol's alive count safely via the event loop.
func aliveCount(node *Node, p *gossip.Protocol) int {
	got := -1
	node.Do(func() { got = p.AliveCount() })
	return got
}

func TestGossipConvergesOverUDP(t *testing.T) {
	nodes, protos := gossipCluster(t, 3)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for i := range nodes {
			if aliveCount(nodes[i], protos[i]) != 3 {
				all = false
				break
			}
		}
		if all {
			return // converged
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i := range nodes {
		t.Logf("node %d sees %d alive", i, aliveCount(nodes[i], protos[i]))
	}
	t.Fatal("gossip did not converge over real UDP")
}

func TestGossipDetectsRealCrash(t *testing.T) {
	nodes, protos := gossipCluster(t, 3)
	// Wait for convergence first.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && aliveCount(nodes[0], protos[0]) != 3 {
		time.Sleep(50 * time.Millisecond)
	}
	if aliveCount(nodes[0], protos[0]) != 3 {
		t.Skip("cluster did not converge; environment too slow")
	}
	// Kill node 2 for real.
	nodes[2].Close()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if aliveCount(nodes[0], protos[0]) == 2 {
			return // death detected
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("crash of a real node not detected")
}

func TestNodeBasics(t *testing.T) {
	registerWire()
	node, err := NewNode("x", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.ID() != "x" || !node.Up() || node.Rand() == nil {
		t.Fatal("port surface wrong")
	}
	if node.Addr() == "" {
		t.Fatal("no address")
	}
	if node.Now() < 0 {
		t.Fatal("negative clock")
	}
	if err := node.AddPeer("y", "not-an-addr"); err == nil {
		t.Fatal("bad peer address accepted")
	}
	if node.Send("ghost", "msg") {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTimerAndTickerOnEventLoop(t *testing.T) {
	registerWire()
	node, err := NewNode("x", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	node.Run()

	fired := make(chan struct{})
	node.After(10*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("timer did not fire")
	}

	// A stopped timer must not fire.
	var stoppedFired bool
	tm := node.After(50*time.Millisecond, func() { stoppedFired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	time.Sleep(150 * time.Millisecond)
	node.Do(func() {}) // drain the loop
	if stoppedFired {
		t.Fatal("stopped timer fired")
	}

	// Ticker fires repeatedly and stops cleanly.
	ticks := 0
	tk := node.Every(20*time.Millisecond, func() { ticks++ })
	time.Sleep(200 * time.Millisecond)
	tk.Stop()
	var snapshot int
	node.Do(func() { snapshot = ticks })
	if snapshot < 3 {
		t.Fatalf("ticks = %d, want ≥3", snapshot)
	}
	time.Sleep(100 * time.Millisecond)
	var after int
	node.Do(func() { after = ticks })
	if after > snapshot+1 {
		t.Fatalf("ticker kept firing after Stop: %d → %d", snapshot, after)
	}
}

func TestSendBetweenTwoNodes(t *testing.T) {
	registerWire()
	a, err := NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("b", b.Addr()); err != nil {
		t.Fatal(err)
	}

	got := make(chan simnet.Message, 1)
	b.OnMessage(func(from simnet.NodeID, msg simnet.Message) {
		if from == "a" {
			got <- msg
		}
	})
	a.Run()
	b.Run()

	// gob needs a registered concrete type; strings are built in.
	if !a.Send("b", "hello-over-udp") {
		t.Fatal("send failed")
	}
	select {
	case m := <-got:
		if m != "hello-over-udp" {
			t.Fatalf("got %v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestRaftCommitsOverUDP(t *testing.T) {
	registerWire()
	consensus.RegisterWire(RegisterWireType)

	ids := []simnet.NodeID{"r0", "r1", "r2"}
	nodes := make([]*Node, 3)
	rafts := make([]*consensus.Node, 3)
	applied := make([]int, 3)
	for i := range ids {
		node, err := NewNode(ids[i], "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		i := i
		rafts[i] = consensus.New(node, ids, consensus.Config{
			ElectionTimeoutMin: 100 * time.Millisecond,
			ElectionTimeoutMax: 200 * time.Millisecond,
			HeartbeatInterval:  30 * time.Millisecond,
		}, func(_ uint64, _ consensus.Command) { applied[i]++ })
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i != j {
				if err := a.AddPeer(ids[j], b.Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i, node := range nodes {
		node.Run()
		i := i
		node.Do(func() { rafts[i].Start() })
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Close()
		}
	})

	// Wait for a leader, then propose through it.
	deadline := time.Now().Add(10 * time.Second)
	leader := -1
	for time.Now().Before(deadline) && leader < 0 {
		for i := range rafts {
			i := i
			nodes[i].Do(func() {
				if rafts[i].Role() == consensus.Leader {
					leader = i
				}
			})
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leader < 0 {
		t.Fatal("no leader elected over real UDP")
	}
	ok := false
	nodes[leader].Do(func() { _, ok = rafts[leader].Propose("real-command") })
	if !ok {
		t.Fatal("propose refused")
	}

	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for i := range rafts {
			var n int
			nodes[i].Do(func() { n = applied[i] })
			if n != 1 {
				all = false
			}
		}
		if all {
			return // committed and applied everywhere
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("command not applied on all nodes: %v", applied)
}

func TestGovernedStoreSyncsOverUDP(t *testing.T) {
	registerWire()
	dataflow.RegisterWire(RegisterWireType)

	world := space.NewMap()
	world.AddDomain(space.Domain{ID: "eu", Jurisdiction: space.JurisdictionGDPR, Trusted: true})
	world.AddDomain(space.Domain{ID: "us", Jurisdiction: space.JurisdictionCCPA, Trusted: true})
	world.Place("producer", space.Point{}, "eu")
	world.Place("consumer", space.Point{X: 5}, "us")

	prod, err := NewNode("producer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := NewNode("consumer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	if err := prod.AddPeer("consumer", cons.Addr()); err != nil {
		t.Fatal(err)
	}

	producer := dataflow.NewStore(prod, world, dataflow.StoreConfig{
		Peers: []simnet.NodeID{"consumer"}, SyncInterval: 50 * time.Millisecond,
	})
	consumer := dataflow.NewStore(cons, world, dataflow.StoreConfig{
		SyncInterval: 50 * time.Millisecond,
	})
	prod.Run()
	cons.Run()
	prod.Do(func() {
		producer.Start()
		producer.Put(dataflow.Item{
			Key: "temp", Value: 21.5,
			Label: dataflow.Label{Topic: "temperature", Sensitivity: dataflow.Public,
				Origin: "eu", Jurisdiction: space.JurisdictionGDPR},
		})
		producer.Put(dataflow.Item{
			Key: "hr", Value: 70.0,
			Label: dataflow.Label{Topic: "vitals", Sensitivity: dataflow.Sensitive,
				Origin: "eu", Jurisdiction: space.JurisdictionGDPR},
		})
	})
	cons.Do(consumer.Start)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var gotTemp, gotHR bool
		cons.Do(func() {
			_, gotTemp = consumer.Get("temp")
			_, gotHR = consumer.Get("hr")
		})
		if gotHR {
			t.Fatal("sensitive item crossed jurisdiction over real UDP")
		}
		if gotTemp {
			// Lineage traveled with the item.
			var hops []dataflow.Hop
			cons.Do(func() { hops = consumer.Lineage("temp") })
			if len(hops) != 2 || hops[1].Node != "consumer" {
				t.Fatalf("lineage = %+v", hops)
			}
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("public item never arrived over real UDP")
}

func TestCloseIdempotentAndDoAfterClose(t *testing.T) {
	registerWire()
	node, err := NewNode("x", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node.Run()
	node.Close()
	node.Close() // idempotent
	if node.Up() {
		t.Fatal("closed node reports up")
	}
	if node.Do(func() {}) {
		t.Fatal("Do succeeded after close")
	}
	if node.Send("b", "x") {
		t.Fatal("send after close succeeded")
	}
}
