package realnet

import (
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/simnet"
)

// Injector replays the crash faults of a fault.Schedule against live
// realnet nodes: the same minimized counterexample a chaos search
// committed against the simulator can be rehearsed on real processes.
// Only KindCrash and KindRecover are portable — the remaining kinds
// (partitions, link shaping, model-level events) need network-layer
// control realnet does not own and are skipped, with the skip count
// reported by Arm so callers notice schedule coverage loss.
type Injector struct {
	nodes map[simnet.NodeID]*Node
	scale float64

	mu     sync.Mutex
	timers []*time.Timer
	log    []fault.Event
}

// NewInjector builds an injector over the given nodes. scale multiplies
// every event's virtual offset into a wall-clock delay — e.g. 0.01
// compresses a six-minute simulated schedule into a 3.6 s rehearsal;
// values <= 0 mean 1 (real time).
func NewInjector(nodes map[simnet.NodeID]*Node, scale float64) *Injector {
	if scale <= 0 {
		scale = 1
	}
	return &Injector{nodes: nodes, scale: scale}
}

// Arm schedules the portable events of s on the wall clock and returns
// how many were armed and how many were skipped (unportable kind or
// unknown target node). Faults fire asynchronously; Stop cancels the
// ones still pending.
func (inj *Injector) Arm(s *fault.Schedule) (armed, skipped int) {
	for _, ev := range s.Events() {
		ev := ev
		var apply func()
		switch ev.Kind {
		case fault.KindCrash:
			if n := inj.nodes[ev.Node]; n != nil {
				apply = func() { n.SetDown(true) }
			}
		case fault.KindRecover:
			if n := inj.nodes[ev.Node]; n != nil {
				apply = func() { n.SetDown(false) }
			}
		}
		if apply == nil {
			skipped++
			continue
		}
		armed++
		delay := time.Duration(float64(ev.At) * inj.scale)
		inj.mu.Lock()
		inj.timers = append(inj.timers, time.AfterFunc(delay, func() {
			apply()
			inj.mu.Lock()
			inj.log = append(inj.log, ev)
			inj.mu.Unlock()
		}))
		inj.mu.Unlock()
	}
	return armed, skipped
}

// Stop cancels every pending fault. Already-fired faults stay applied.
func (inj *Injector) Stop() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, t := range inj.timers {
		t.Stop()
	}
	inj.timers = nil
}

// Log returns the events injected so far, in firing order.
func (inj *Injector) Log() []fault.Event {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]fault.Event(nil), inj.log...)
}
