package realnet

import (
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/simnet"
)

// TimedEvent pairs an injected fault with the wall-clock instant it
// fired, so a live run's fault log can be correlated with external
// observations (packet captures, metrics scrapes) that only know wall
// time.
type TimedEvent struct {
	Event fault.Event
	Wall  time.Time
}

// Injector replays a fault.Schedule against live realnet nodes: the
// same minimized counterexample a chaos search committed against the
// simulator rehearses on real processes and sockets. All six network
// fault kinds arm — crashes and recoveries through Node.SetDown,
// partitions and heals through Fabric group drops, link degrade and
// restore through the per-link shaper — and the model-level kinds
// (domain transfer, stack upgrade, battery drain) are delivered to
// subscribers, exactly as in the simulator. The only skipped events
// are crash/recover targets the node set does not contain, so
// skipped == 0 on any schedule drawn from the run's own topology.
type Injector struct {
	fabric *Fabric
	scale  float64
	serial *sync.Mutex // optional world lock held while applying

	mu     sync.Mutex
	subs   []fault.Subscriber
	timers []*time.Timer
	log    []fault.Event
	timed  []TimedEvent
}

// NewInjector builds an injector over the given nodes. scale multiplies
// every event's virtual offset into a wall-clock delay — e.g. 0.01
// compresses a six-minute simulated schedule into a 3.6 s rehearsal;
// values <= 0 mean 1 (real time).
func NewInjector(nodes map[simnet.NodeID]*Node, scale float64) *Injector {
	return NewFabricInjector(NewFabric(nodes), scale)
}

// NewFabricInjector builds an injector over an existing fabric, so a
// cluster harness and its injector share one partition state.
func NewFabricInjector(f *Fabric, scale float64) *Injector {
	if scale <= 0 {
		scale = 1
	}
	return &Injector{fabric: f, scale: scale}
}

// SetSerializer installs a mutex held while each fault applies and its
// subscribers run — pass the cluster's world lock so fault application
// serializes with protocol event loops and measurements.
func (inj *Injector) SetSerializer(mu *sync.Mutex) { inj.serial = mu }

// Subscribe registers a subscriber invoked for every injected event
// (all kinds), after the event's network effect has been applied.
func (inj *Injector) Subscribe(fn fault.Subscriber) {
	inj.mu.Lock()
	inj.subs = append(inj.subs, fn)
	inj.mu.Unlock()
}

// Fabric returns the fabric this injector applies partitions and link
// shapes through.
func (inj *Injector) Fabric() *Fabric { return inj.fabric }

// Arm schedules every event of s on the wall clock and returns how many
// were armed and how many were skipped. With the full fault port,
// skipped counts only crash/recover events naming a node outside the
// fabric — on a schedule drawn from the run's own topology it is 0, and
// tests treat anything else as a hard error. Faults fire
// asynchronously; Stop cancels the ones still pending.
func (inj *Injector) Arm(s *fault.Schedule) (armed, skipped int) {
	for _, ev := range s.Events() {
		ev := ev
		apply := inj.applyFn(ev)
		if apply == nil {
			skipped++
			continue
		}
		armed++
		delay := time.Duration(float64(ev.At) * inj.scale)
		inj.mu.Lock()
		inj.timers = append(inj.timers, time.AfterFunc(delay, func() {
			inj.fire(ev, apply)
		}))
		inj.mu.Unlock()
	}
	return armed, skipped
}

// Inject applies one event immediately (At is kept as given). Events
// that would be skipped by Arm are ignored.
func (inj *Injector) Inject(ev fault.Event) {
	if apply := inj.applyFn(ev); apply != nil {
		inj.fire(ev, apply)
	}
}

// applyFn resolves an event to its network effect, or nil when the
// event cannot arm (crash/recover target outside the fabric, unknown
// kind).
func (inj *Injector) applyFn(ev fault.Event) func() {
	switch ev.Kind {
	case fault.KindCrash:
		if n := inj.fabric.Node(ev.Node); n != nil {
			return func() { n.SetDown(true) }
		}
	case fault.KindRecover:
		if n := inj.fabric.Node(ev.Node); n != nil {
			return func() { n.SetDown(false) }
		}
	case fault.KindPartitionStart:
		groups := ev.Groups
		return func() { inj.fabric.Partition(groups...) }
	case fault.KindPartitionEnd:
		return func() { inj.fabric.HealPartition() }
	case fault.KindLinkDegrade:
		return func() { inj.fabric.DegradeLink(ev.From, ev.To, ev.Latency, ev.Loss) }
	case fault.KindLinkRestore:
		return func() { inj.fabric.RestoreLink(ev.From, ev.To) }
	case fault.KindDomainTransfer, fault.KindStackUpgrade, fault.KindBatteryDrain:
		return func() {} // model-level: subscribers own these
	}
	return nil
}

// fire applies one event under the serializer (if any), logs it with a
// wall-clock timestamp, and notifies subscribers.
func (inj *Injector) fire(ev fault.Event, apply func()) {
	if inj.serial != nil {
		inj.serial.Lock()
		defer inj.serial.Unlock()
	}
	apply()
	inj.mu.Lock()
	inj.log = append(inj.log, ev)
	inj.timed = append(inj.timed, TimedEvent{Event: ev, Wall: time.Now()})
	subs := append([]fault.Subscriber(nil), inj.subs...)
	inj.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Stop cancels every pending fault. Already-fired faults stay applied.
func (inj *Injector) Stop() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for _, t := range inj.timers {
		t.Stop()
	}
	inj.timers = nil
}

// Log returns the events injected so far, in firing order, with their
// scheduled virtual offsets — the same shape the simulator's injector
// log has, so recovery attribution works unchanged on live runs.
func (inj *Injector) Log() []fault.Event {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]fault.Event(nil), inj.log...)
}

// TimedLog returns the events injected so far with the wall-clock
// instants they fired — partitions and link events timestamped exactly
// like crashes.
func (inj *Injector) TimedLog() []TimedEvent {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]TimedEvent(nil), inj.timed...)
}
