package realnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/simnet"
)

// pingMsg is the trivial wire payload for the injector test.
type pingMsg struct{ N int }

// TestInjectorCrashRecover rehearses a crash/recover schedule on two
// live UDP nodes: while the fault is applied the target must drop
// traffic, silence its ticker and refuse Send; after the scheduled
// repair it must resume, with OnDown/OnUp observing both transitions.
func TestInjectorCrashRecover(t *testing.T) {
	RegisterWireType(pingMsg{})
	a, err := NewNode("a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode("b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("a", a.Addr()); err != nil {
		t.Fatal(err)
	}

	received, ticks, downs, ups := 0, 0, 0, 0
	b.OnMessage(func(simnet.NodeID, simnet.Message) { received++ })
	b.OnDown(func() { downs++ })
	b.OnUp(func() { ups++ })
	b.Every(5*time.Millisecond, func() { ticks++ })
	a.Run()
	b.Run()
	a.Every(5*time.Millisecond, func() { a.Send("b", pingMsg{N: 1}) })

	// Crash b at 10ms (virtual 100ms, scale 0.1) for 150ms.
	s := (&fault.Schedule{}).Crash(100*time.Millisecond, "b", 1500*time.Millisecond)
	s.TransferDomain(50*time.Millisecond, "b", "foreign") // model-level: arms, delivered to subscribers
	inj := NewInjector(map[simnet.NodeID]*Node{"a": a, "b": b}, 0.1)
	defer inj.Stop()
	var modelEvents []fault.Event
	var modelMu sync.Mutex
	inj.Subscribe(func(ev fault.Event) {
		if ev.Kind == fault.KindDomainTransfer {
			modelMu.Lock()
			modelEvents = append(modelEvents, ev)
			modelMu.Unlock()
		}
	})
	armed, skipped := inj.Arm(s)
	if armed != 3 || skipped != 0 {
		t.Fatalf("Arm: armed=%d skipped=%d, want 3 armed (crash+recover+transfer), 0 skipped", armed, skipped)
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	waitFor("crash fault", func() bool { return b.Down() })
	// Snapshot counters on the event loop, wait a few tick periods, and
	// verify nothing moved while down: no receives, no ticks, no Send.
	var c1, t1 int
	b.Do(func() { c1, t1 = received, ticks })
	time.Sleep(40 * time.Millisecond)
	var c2, t2 int
	b.Do(func() { c2, t2 = received, ticks })
	if c2 != c1 || t2 != t1 {
		t.Fatalf("activity while down: received %d→%d, ticks %d→%d", c1, c2, t1, t2)
	}
	if b.Send("a", pingMsg{N: 2}) {
		t.Fatal("Send succeeded on a crashed node")
	}

	waitFor("scheduled repair", func() bool { return !b.Down() })
	waitFor("traffic after recovery", func() bool {
		var c int
		b.Do(func() { c = received })
		return c > c2
	})
	var gotDowns, gotUps int
	b.Do(func() { gotDowns, gotUps = downs, ups })
	if gotDowns != 1 || gotUps != 1 {
		t.Fatalf("transitions: OnDown=%d OnUp=%d, want 1/1", gotDowns, gotUps)
	}
	if lg := inj.Log(); len(lg) != 3 || lg[0].Kind != fault.KindDomainTransfer ||
		lg[1].Kind != fault.KindCrash || lg[2].Kind != fault.KindRecover {
		t.Fatalf("injector log = %v, want [transfer crash recover]", lg)
	}
	modelMu.Lock()
	nModel := len(modelEvents)
	modelMu.Unlock()
	if nModel != 1 {
		t.Fatalf("model-level subscriber saw %d events, want 1", nModel)
	}
	tl := inj.TimedLog()
	if len(tl) != 3 {
		t.Fatalf("timed log has %d entries, want 3", len(tl))
	}
	for i, te := range tl {
		if te.Wall.IsZero() {
			t.Fatalf("timed log entry %d has zero wall timestamp", i)
		}
		if i > 0 && te.Wall.Before(tl[i-1].Wall) {
			t.Fatalf("timed log out of order at %d", i)
		}
	}
}
