// Package realnet runs the repository's protocol implementations over
// a real network: a Node is a simnet.Port backed by a UDP socket and
// the wall clock instead of the simulator. Protocol state machines are
// written single-threaded; realnet preserves that contract by
// funneling every event — incoming datagram, timer fire, tick —
// through one event-loop goroutine, so the exact same gossip,
// consensus and data-plane code that runs deterministically in the
// simulator also runs on real infrastructure. Crash faults port too:
// Node.SetDown mirrors simnet's crashed-node semantics and Injector
// replays the crash events of a fault.Schedule (e.g. a committed chaos
// counterexample) against live nodes on the wall clock.
//
// Wire format: gob. Protocol packages register their message types via
// their RegisterWire functions before nodes start.
package realnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/simnet"
)

// wireEnvelope frames one datagram.
type wireEnvelope struct {
	From    simnet.NodeID
	Payload any
}

// RegisterWireType makes a message type encodable. Call once per
// concrete message type before any node starts (protocol packages
// export RegisterWire helpers that do this for their types).
func RegisterWireType(value any) {
	gob.Register(value)
}

// maxDatagram bounds encoded message size.
const maxDatagram = 64 * 1024

// Node is one real-network protocol host. Construct with NewNode, add
// peers, install protocols (they call OnMessage/Every through the Port
// interface), then Run. Close stops the event loop and the socket.
type Node struct {
	id    simnet.NodeID
	conn  *net.UDPConn
	rng   *rand.Rand
	start time.Time

	mu      sync.Mutex
	peers   map[simnet.NodeID]*net.UDPAddr
	handler simnet.Handler
	closed  bool
	down    bool
	onUp    []func()
	onDown  []func()

	events chan func()
	done   chan struct{}
	wg     sync.WaitGroup
}

var _ simnet.Port = (*Node)(nil)

// NewNode binds a UDP socket. bind may be ":0" for an ephemeral port;
// Addr reports the actual address.
func NewNode(id simnet.NodeID, bind string) (*Node, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("realnet: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("realnet: listen %q: %w", bind, err)
	}
	return &Node{
		id:     id,
		conn:   conn,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		start:  time.Now(),
		peers:  make(map[simnet.NodeID]*net.UDPAddr),
		events: make(chan func(), 1024),
		done:   make(chan struct{}),
	}, nil
}

// Addr returns the bound UDP address.
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// AddPeer registers a peer's address.
func (n *Node) AddPeer(id simnet.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("realnet: resolve peer %q: %w", addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = ua
	return nil
}

// Run starts the reader and event-loop goroutines. Call after the
// protocols are installed.
func (n *Node) Run() {
	n.wg.Add(2)
	go n.readLoop()
	go n.eventLoop()
}

// Close shuts the node down and waits for its goroutines to exit.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	_ = n.conn.Close()
	n.wg.Wait()
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		var env wireEnvelope
		if err := gob.NewDecoder(bytes.NewReader(buf[:sz])).Decode(&env); err != nil {
			continue // malformed datagram
		}
		n.post(func() {
			n.mu.Lock()
			h := n.handler
			down := n.down
			n.mu.Unlock()
			if h != nil && !down {
				h(env.From, env.Payload)
			}
		})
	}
}

func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.events:
			fn()
		case <-n.done:
			return
		}
	}
}

// post enqueues a callback onto the event loop; events arriving after
// shutdown are dropped.
func (n *Node) post(fn func()) {
	select {
	case n.events <- fn:
	case <-n.done:
	}
}

// Do runs fn on the event loop and waits for it to finish — the safe
// way for external goroutines (tests, operator tooling) to inspect
// protocol state owned by the loop. It reports false if the node shut
// down before fn could run.
func (n *Node) Do(fn func()) bool {
	done := make(chan struct{})
	select {
	case n.events <- func() { fn(); close(done) }:
	case <-n.done:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.done:
		return false
	}
}

// --- simnet.Port ---

// ID returns the node identifier.
func (n *Node) ID() simnet.NodeID { return n.id }

// Now returns the wall-clock time since the node was created.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// Rand returns the node's random source. It must only be used from
// protocol callbacks (the event loop), which is how protocols written
// against simnet.Port behave.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Up reports whether the node is open.
func (n *Node) Up() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.closed
}

// OnMessage installs the datagram handler.
func (n *Node) OnMessage(h simnet.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// OnUp registers a recovery callback, invoked on the event loop when
// SetDown(false) revives a crashed node — the hook protocols use to
// reset volatile state after a restart, exactly as in the simulator.
func (n *Node) OnUp(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onUp = append(n.onUp, fn)
}

// OnDown registers a crash callback, invoked on the event loop when
// SetDown(true) takes the node down.
func (n *Node) OnDown(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onDown = append(n.onDown, fn)
}

// SetDown injects or repairs a crash fault: while down the node drops
// incoming datagrams, refuses Send, and silences timer and ticker
// callbacks — the realnet analogue of simnet's crashed-node semantics,
// except the process (socket, goroutines, timers) stays alive so
// SetDown(false) restarts it in place. Transition callbacks run on the
// event loop; setting the current state again is a no-op.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	if n.closed || n.down == down {
		n.mu.Unlock()
		return
	}
	n.down = down
	hooks := n.onUp
	if down {
		hooks = n.onDown
	}
	n.mu.Unlock()
	n.post(func() {
		for _, fn := range hooks {
			fn()
		}
	})
}

// Down reports whether a crash fault is currently injected.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// Send encodes and transmits msg to the peer. Unknown peers and
// encoding failures report false.
func (n *Node) Send(to simnet.NodeID, msg simnet.Message) bool {
	n.mu.Lock()
	addr, ok := n.peers[to]
	blocked := n.closed || n.down
	n.mu.Unlock()
	if !ok || blocked {
		return false
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireEnvelope{From: n.id, Payload: msg}); err != nil {
		return false
	}
	if buf.Len() > maxDatagram {
		return false
	}
	_, err := n.conn.WriteToUDP(buf.Bytes(), addr)
	return err == nil
}

// After schedules fn on the event loop d from now.
func (n *Node) After(d time.Duration, fn func()) *simnet.Timer {
	var fired sync.Once
	stopped := false
	var mu sync.Mutex
	t := time.AfterFunc(d, func() {
		n.post(func() {
			mu.Lock()
			s := stopped
			mu.Unlock()
			if s || n.Down() {
				return
			}
			fired.Do(fn)
		})
	})
	return simnet.NewExternalTimer(func() bool {
		mu.Lock()
		already := stopped
		stopped = true
		mu.Unlock()
		return t.Stop() && !already
	})
}

// Every runs fn on the event loop at the given period until stopped or
// the node closes.
func (n *Node) Every(interval time.Duration, fn func()) *simnet.Ticker {
	ticker := time.NewTicker(interval)
	stop := make(chan struct{})
	var once sync.Once
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-ticker.C:
				n.post(func() {
					if !n.Down() {
						fn()
					}
				})
			case <-stop:
				return
			case <-n.done:
				return
			}
		}
	}()
	return simnet.NewExternalTicker(func() {
		once.Do(func() {
			ticker.Stop()
			close(stop)
		})
	})
}
