// Package realnet runs the repository's protocol implementations over
// a real network: a Node is a simnet.Port backed by a UDP socket and
// the wall clock instead of the simulator. Protocol state machines are
// written single-threaded; realnet preserves that contract by
// funneling every event — incoming datagram, timer fire, tick —
// through one event-loop goroutine, so the exact same gossip,
// consensus and data-plane code that runs deterministically in the
// simulator also runs on real infrastructure. Crash faults port too:
// Node.SetDown mirrors simnet's crashed-node semantics and Injector
// replays the crash events of a fault.Schedule (e.g. a committed chaos
// counterexample) against live nodes on the wall clock.
//
// Partition and link-shaping faults port as well: every node carries a
// blocked-peer set (group partitions enforce bidirectional drops at
// both the sender and the receiver) and a per-link shaper (added
// latency through a FIFO delay queue, probabilistic loss from a PRNG
// seeded deterministically per link), so the full network-fault surface
// of a fault.Schedule replays on live sockets. Fabric coordinates those
// per-node controls across a node set with simnet's exact semantics.
//
// Wire format: gob. Protocol packages register their message types via
// their RegisterWire functions before nodes start.
package realnet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simnet"
)

// wireEnvelope frames one datagram.
type wireEnvelope struct {
	From    simnet.NodeID
	Payload any
}

// RegisterWireType makes a message type encodable. Call once per
// concrete message type before any node starts (protocol packages
// export RegisterWire helpers that do this for their types).
func RegisterWireType(value any) {
	gob.Register(value)
}

// maxDatagram bounds encoded message size.
const maxDatagram = 64 * 1024

// shapeQueueCap bounds each shaped link's delay queue; packets beyond
// it drop, the overload behaviour of a congested real link.
const shapeQueueCap = 4096

// NetStats counts one node's datagram-level traffic and the pressure
// the fault machinery put on it. Dropped counts packets removed by
// partitions, shaper loss, delay-queue overflow, and delayed packets
// whose link was cut before delivery — not sends refused because the
// node itself was down.
type NetStats struct {
	Sent      int64 // datagrams written to the socket
	SentBytes int64 // bytes written to the socket
	Received  int64 // datagrams delivered to the handler
	Dropped   int64 // datagrams dropped by partition/loss/overflow
	Delayed   int64 // datagrams routed through a delay queue
	Shaped    int64 // datagrams that traversed a shaped link
}

type netCounters struct {
	sent      atomic.Int64
	sentBytes atomic.Int64
	received  atomic.Int64
	dropped   atomic.Int64
	delayed   atomic.Int64
	shaped    atomic.Int64
}

// delayedPacket is one encoded datagram waiting in a link's delay
// queue.
type delayedPacket struct {
	data []byte
	addr *net.UDPAddr
	to   simnet.NodeID
	due  time.Time
}

// linkShape is the fault-injected state of one outgoing link: added
// latency (virtual time; scaled to the wall clock at send) and
// probabilistic loss drawn from a per-link deterministic PRNG. The
// queue exists only while latency > 0 has been requested at least
// once; its drain goroutine preserves FIFO order per link.
type linkShape struct {
	latency time.Duration
	loss    float64
	rng     *rand.Rand // guarded by Node.mu
	q       chan delayedPacket
}

// Node is one real-network protocol host. Construct with NewNode, add
// peers, install protocols (they call OnMessage/Every through the Port
// interface), then Run. Close stops the event loop and the socket.
type Node struct {
	id      simnet.NodeID
	conn    *net.UDPConn
	rng     *rand.Rand
	scale   float64     // wall seconds per virtual second (default 1)
	netSeed int64       // base seed for per-link loss PRNG streams
	serial  *sync.Mutex // optional world lock around event callbacks

	mu      sync.Mutex
	start   time.Time
	peers   map[simnet.NodeID]*net.UDPAddr
	handler simnet.Handler
	closed  bool
	down    bool
	onUp    []func()
	onDown  []func()
	blocked map[simnet.NodeID]bool
	shapes  map[simnet.NodeID]*linkShape

	stat netCounters

	events chan func()
	done   chan struct{}
	wg     sync.WaitGroup
}

var _ simnet.Port = (*Node)(nil)

// NewNode binds a UDP socket. bind may be ":0" for an ephemeral port;
// Addr reports the actual address.
func NewNode(id simnet.NodeID, bind string) (*Node, error) {
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("realnet: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("realnet: listen %q: %w", bind, err)
	}
	// Large clusters burst hard on loopback (hundreds of nodes sharing
	// one machine); grow the kernel buffers so those bursts queue
	// instead of dropping. Best-effort: the OS clamps to its limits.
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	return &Node{
		id:      id,
		conn:    conn,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		scale:   1,
		start:   time.Now(),
		peers:   make(map[simnet.NodeID]*net.UDPAddr),
		blocked: make(map[simnet.NodeID]bool),
		shapes:  make(map[simnet.NodeID]*linkShape),
		events:  make(chan func(), 1024),
		done:    make(chan struct{}),
	}, nil
}

// SetSeed reseeds the node's RNG deterministically and fixes the base
// seed that per-link loss PRNG streams derive from, so a replayed
// schedule draws the same loss pattern on every run. Call before Run.
func (n *Node) SetSeed(seed int64) {
	n.rng = rand.New(rand.NewSource(subSeed(seed, "node/"+string(n.id))))
	n.netSeed = seed
}

// SetTimeScale compresses (or stretches) the node's clock: one virtual
// second occupies scale wall seconds. Now reports virtual time;
// After/Every and shaper latencies convert virtual durations to wall
// delays, so protocol code written against virtual intervals runs
// unchanged at any compression. Call before Run; values <= 0 mean 1.
func (n *Node) SetTimeScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	n.scale = scale
}

// SetSerializer installs a shared mutex held around every event-loop
// callback. A cluster of nodes sharing one serializer behaves like the
// simulator's single-threaded world: any goroutine holding the mutex
// can read protocol state without racing the event loops. Call before
// Run. Never call Do while holding the serializer — that deadlocks.
func (n *Node) SetSerializer(mu *sync.Mutex) { n.serial = mu }

// resetClock restarts the node's virtual clock at zero. The cluster
// harness calls it right before Run so every node's Now and the
// harness's own clock share one epoch.
func (n *Node) resetClock() {
	n.mu.Lock()
	n.start = time.Now()
	n.mu.Unlock()
}

// wall converts a virtual duration to a wall-clock delay.
func (n *Node) wall(d time.Duration) time.Duration {
	if n.scale == 1 {
		return d
	}
	return time.Duration(float64(d) * n.scale)
}

// NetStats returns a snapshot of the node's traffic counters.
func (n *Node) NetStats() NetStats {
	return NetStats{
		Sent:      n.stat.sent.Load(),
		SentBytes: n.stat.sentBytes.Load(),
		Received:  n.stat.received.Load(),
		Dropped:   n.stat.dropped.Load(),
		Delayed:   n.stat.delayed.Load(),
		Shaped:    n.stat.shaped.Load(),
	}
}

// Addr returns the bound UDP address.
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// AddPeer registers a peer's address.
func (n *Node) AddPeer(id simnet.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("realnet: resolve peer %q: %w", addr, err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[id] = ua
	return nil
}

// Run starts the reader and event-loop goroutines. Call after the
// protocols are installed.
func (n *Node) Run() {
	n.wg.Add(2)
	go n.readLoop()
	go n.eventLoop()
}

// Close shuts the node down and waits for its goroutines to exit.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	_ = n.conn.Close()
	n.wg.Wait()
}

func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		var env wireEnvelope
		if err := gob.NewDecoder(bytes.NewReader(buf[:sz])).Decode(&env); err != nil {
			continue // malformed datagram
		}
		n.post(func() {
			n.mu.Lock()
			h := n.handler
			down := n.down
			blocked := n.blocked[env.From]
			n.mu.Unlock()
			if blocked {
				// The sender was partitioned away by the time the
				// datagram arrived — the receive-side half of simnet's
				// delivery-time reachability check.
				n.stat.dropped.Add(1)
				return
			}
			if h != nil && !down {
				n.stat.received.Add(1)
				h(env.From, env.Payload)
			}
		})
	}
}

func (n *Node) eventLoop() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.events:
			if n.serial != nil {
				n.serial.Lock()
				fn()
				n.serial.Unlock()
			} else {
				fn()
			}
		case <-n.done:
			return
		}
	}
}

// post enqueues a callback onto the event loop; events arriving after
// shutdown are dropped.
func (n *Node) post(fn func()) {
	select {
	case n.events <- fn:
	case <-n.done:
	}
}

// Do runs fn on the event loop and waits for it to finish — the safe
// way for external goroutines (tests, operator tooling) to inspect
// protocol state owned by the loop. It reports false if the node shut
// down before fn could run.
func (n *Node) Do(fn func()) bool {
	done := make(chan struct{})
	select {
	case n.events <- func() { fn(); close(done) }:
	case <-n.done:
		return false
	}
	select {
	case <-done:
		return true
	case <-n.done:
		return false
	}
}

// --- simnet.Port ---

// ID returns the node identifier.
func (n *Node) ID() simnet.NodeID { return n.id }

// Now returns the virtual time since the node's clock epoch: wall time
// elapsed divided by the time scale.
func (n *Node) Now() time.Duration {
	n.mu.Lock()
	elapsed := time.Since(n.start)
	n.mu.Unlock()
	if n.scale == 1 {
		return elapsed
	}
	return time.Duration(float64(elapsed) / n.scale)
}

// Rand returns the node's random source. It must only be used from
// protocol callbacks (the event loop), which is how protocols written
// against simnet.Port behave.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Up reports whether the node is open.
func (n *Node) Up() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.closed
}

// OnMessage installs the datagram handler.
func (n *Node) OnMessage(h simnet.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handler = h
}

// OnUp registers a recovery callback, invoked on the event loop when
// SetDown(false) revives a crashed node — the hook protocols use to
// reset volatile state after a restart, exactly as in the simulator.
func (n *Node) OnUp(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onUp = append(n.onUp, fn)
}

// OnDown registers a crash callback, invoked on the event loop when
// SetDown(true) takes the node down.
func (n *Node) OnDown(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onDown = append(n.onDown, fn)
}

// SetDown injects or repairs a crash fault: while down the node drops
// incoming datagrams, refuses Send, and silences timer and ticker
// callbacks — the realnet analogue of simnet's crashed-node semantics,
// except the process (socket, goroutines, timers) stays alive so
// SetDown(false) restarts it in place. Transition callbacks run on the
// event loop; setting the current state again is a no-op.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	if n.closed || n.down == down {
		n.mu.Unlock()
		return
	}
	n.down = down
	hooks := n.onUp
	if down {
		hooks = n.onDown
	}
	n.mu.Unlock()
	n.post(func() {
		for _, fn := range hooks {
			fn()
		}
	})
}

// Down reports whether a crash fault is currently injected.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

// Send encodes and transmits msg to the peer. Unknown peers and
// encoding failures report false, as do sends refused by an injected
// fault: a down node, a partitioned peer, or a loss draw on a shaped
// link — mirroring simnet, where Send reports false when the message
// will not arrive.
func (n *Node) Send(to simnet.NodeID, msg simnet.Message) bool {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireEnvelope{From: n.id, Payload: msg}); err != nil {
		return false
	}
	if buf.Len() > maxDatagram {
		return false
	}

	n.mu.Lock()
	addr, ok := n.peers[to]
	if !ok || n.closed || n.down {
		n.mu.Unlock()
		return false
	}
	if n.blocked[to] {
		n.mu.Unlock()
		n.stat.dropped.Add(1)
		return false
	}
	sh := n.shapes[to]
	var delay time.Duration
	if sh != nil {
		n.stat.shaped.Add(1)
		if sh.loss > 0 && sh.rng.Float64() < sh.loss {
			n.mu.Unlock()
			n.stat.dropped.Add(1)
			return false
		}
		delay = n.wall(sh.latency)
		if delay > 0 {
			// Enqueue under mu: the queue is only closed (by
			// ClearShapedLink/Close) while mu is held and the shape
			// removed from the map, so this send cannot race a close.
			pkt := delayedPacket{
				data: append([]byte(nil), buf.Bytes()...),
				addr: addr,
				to:   to,
				due:  time.Now().Add(delay),
			}
			select {
			case sh.q <- pkt:
				n.mu.Unlock()
				n.stat.delayed.Add(1)
				return true
			default:
				n.mu.Unlock()
				n.stat.dropped.Add(1)
				return false
			}
		}
	}
	n.mu.Unlock()

	_, err := n.conn.WriteToUDP(buf.Bytes(), addr)
	if err == nil {
		n.stat.sent.Add(1)
		n.stat.sentBytes.Add(int64(buf.Len()))
	}
	return err == nil
}

// SetBlocked replaces the set of peers this node must not exchange
// datagrams with — the per-node projection of a network partition.
// Blocks apply on both paths: Send refuses immediately, the read loop
// drops arrivals from blocked senders, and delayed packets re-check at
// delivery time, so a partition starting while a packet sits in a delay
// queue still cuts it off.
func (n *Node) SetBlocked(peers map[simnet.NodeID]bool) {
	cp := make(map[simnet.NodeID]bool, len(peers))
	for id, b := range peers {
		if b {
			cp[id] = true
		}
	}
	n.mu.Lock()
	n.blocked = cp
	n.mu.Unlock()
}

// Blocked reports whether traffic to/from peer is currently cut by a
// partition.
func (n *Node) Blocked(peer simnet.NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked[peer]
}

// ShapeLink installs (or replaces) the outgoing shape of the link to
// peer: latency is added virtual delay through a FIFO queue, loss the
// per-datagram drop probability drawn from a PRNG stream derived
// deterministically from (seed, from→to), so two runs with the same
// seed and traffic see the same loss pattern.
func (n *Node) ShapeLink(to simnet.NodeID, latency time.Duration, loss float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	sh := n.shapes[to]
	if sh == nil {
		sh = &linkShape{
			rng: rand.New(rand.NewSource(subSeed(n.netSeed, "loss/"+string(n.id)+"->"+string(to)))),
		}
		n.shapes[to] = sh
	}
	sh.latency, sh.loss = latency, loss
	if latency > 0 && sh.q == nil {
		sh.q = make(chan delayedPacket, shapeQueueCap)
		n.wg.Add(1)
		go n.drainShape(sh.q)
	}
}

// ClearShapedLink removes the shape of the link to peer, restoring its
// native latency and zero loss. Packets already in the delay queue
// still deliver at their original due time, as in the simulator.
func (n *Node) ClearShapedLink(to simnet.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh := n.shapes[to]
	if sh == nil {
		return
	}
	delete(n.shapes, to)
	if sh.q != nil {
		close(sh.q) // drain flushes the backlog, then exits
	}
}

// drainShape delivers one link's delayed packets in FIFO order,
// re-checking partitions and shutdown at each packet's due time.
func (n *Node) drainShape(q chan delayedPacket) {
	defer n.wg.Done()
	for {
		select {
		case pkt, ok := <-q:
			if !ok {
				return
			}
			if d := time.Until(pkt.due); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-n.done:
					t.Stop()
					return
				}
			}
			n.deliverDelayed(pkt)
		case <-n.done:
			return
		}
	}
}

func (n *Node) deliverDelayed(pkt delayedPacket) {
	n.mu.Lock()
	blocked := n.blocked[pkt.to]
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return
	}
	if blocked {
		n.stat.dropped.Add(1)
		return
	}
	if _, err := n.conn.WriteToUDP(pkt.data, pkt.addr); err == nil {
		n.stat.sent.Add(1)
		n.stat.sentBytes.Add(int64(len(pkt.data)))
	}
}

// subSeed derives an independent RNG-stream seed from a base seed and
// a stream label (FNV-1a over the label, folded into the seed) — the
// same derivation the fault package uses for schedule generation.
func subSeed(seed int64, label string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return seed ^ int64(h)
}

// After schedules fn on the event loop d (virtual) from now.
func (n *Node) After(d time.Duration, fn func()) *simnet.Timer {
	var fired sync.Once
	stopped := false
	var mu sync.Mutex
	t := time.AfterFunc(n.wall(d), func() {
		n.post(func() {
			mu.Lock()
			s := stopped
			mu.Unlock()
			if s || n.Down() {
				return
			}
			fired.Do(fn)
		})
	})
	return simnet.NewExternalTimer(func() bool {
		mu.Lock()
		already := stopped
		stopped = true
		mu.Unlock()
		return t.Stop() && !already
	})
}

// Every runs fn on the event loop at the given (virtual) period until
// stopped or the node closes.
func (n *Node) Every(interval time.Duration, fn func()) *simnet.Ticker {
	wall := n.wall(interval)
	if wall < 100*time.Microsecond {
		wall = 100 * time.Microsecond // ticker floor at high compression
	}
	ticker := time.NewTicker(wall)
	stop := make(chan struct{})
	var once sync.Once
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-ticker.C:
				n.post(func() {
					if !n.Down() {
						fn()
					}
				})
			case <-stop:
				return
			case <-n.done:
				return
			}
		}
	}()
	return simnet.NewExternalTicker(func() {
		once.Do(func() {
			ticker.Stop()
			close(stop)
		})
	})
}
