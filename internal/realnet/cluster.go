package realnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simnet"
)

// ClusterConfig tunes a live-city cluster.
type ClusterConfig struct {
	// Seed fixes every node's RNG stream and the per-link loss PRNGs,
	// so a replayed schedule draws the same loss pattern run to run.
	Seed int64
	// TimeScale is wall seconds per virtual second (e.g. 0.1 runs a
	// six-minute schedule in 36 s); <= 0 means 1.
	TimeScale float64
	// Serialize installs a shared world lock around every node's event
	// callbacks, letting the harness read protocol state without racing
	// the event loops — the live analogue of the simulator's
	// single-threaded world.
	Serialize bool
}

// Cluster boots a topology of realnet nodes on loopback UDP, wires the
// full peer mesh, and exposes the fabric's fault surface plus an
// injector factory — the process-level harness the live city runs on.
type Cluster struct {
	cfg    ClusterConfig
	world  sync.Mutex
	fabric *Fabric

	mu      sync.Mutex
	nodes   map[simnet.NodeID]*Node
	order   []simnet.NodeID
	started bool
	epoch   time.Time
}

// NewCluster creates an empty cluster.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	c := &Cluster{cfg: cfg, nodes: make(map[simnet.NodeID]*Node)}
	c.fabric = NewFabric(nil)
	return c
}

// AddNode binds a new node on an ephemeral loopback port and registers
// it in the fabric. Call before Start.
func (c *Cluster) AddNode(id simnet.NodeID) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil, fmt.Errorf("realnet: cluster already started")
	}
	if _, ok := c.nodes[id]; ok {
		return nil, fmt.Errorf("realnet: duplicate node %q", id)
	}
	n, err := NewNode(id, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n.SetSeed(c.cfg.Seed)
	n.SetTimeScale(c.cfg.TimeScale)
	if c.cfg.Serialize {
		n.SetSerializer(&c.world)
	}
	c.nodes[id] = n
	c.order = append(c.order, id)
	c.fabric.Register(n)
	return n, nil
}

// Start wires the full peer mesh, resets every node's clock to a shared
// epoch, and starts the event loops. Protocols must already be
// installed on the nodes.
func (c *Cluster) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("realnet: cluster already started")
	}
	for _, a := range c.order {
		for _, b := range c.order {
			if a == b {
				continue
			}
			if err := c.nodes[a].AddPeer(b, c.nodes[b].Addr()); err != nil {
				return err
			}
		}
	}
	c.epoch = time.Now()
	for _, id := range c.order {
		c.nodes[id].resetClock()
		c.nodes[id].Run()
	}
	c.started = true
	return nil
}

// Close shuts every node down.
func (c *Cluster) Close() {
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.order))
	for _, id := range c.order {
		nodes = append(nodes, c.nodes[id])
	}
	c.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}

// Node returns the node with the given id, or nil.
func (c *Cluster) Node(id simnet.NodeID) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[id]
}

// NodeUp reports whether id exists and is not crashed — the live
// analogue of simnet's NodeUp.
func (c *Cluster) NodeUp(id simnet.NodeID) bool {
	n := c.Node(id)
	return n != nil && !n.Down()
}

// SetDown injects or repairs a crash on id; unknown ids are ignored.
func (c *Cluster) SetDown(id simnet.NodeID, down bool) {
	if n := c.Node(id); n != nil {
		n.SetDown(down)
	}
}

// Fabric exposes the cluster's partition / link-shaping surface.
func (c *Cluster) Fabric() *Fabric { return c.fabric }

// Reachable reports the fabric's partition-level reachability.
func (c *Cluster) Reachable(from, to simnet.NodeID) bool {
	return c.fabric.Reachable(from, to)
}

// WorldLock returns the shared serializer (nil unless Serialize was
// set): hold it to read protocol state owned by node event loops.
func (c *Cluster) WorldLock() *sync.Mutex {
	if !c.cfg.Serialize {
		return nil
	}
	return &c.world
}

// Now returns the cluster's virtual time: wall time since Start divided
// by the time scale (zero before Start).
func (c *Cluster) Now() time.Duration {
	c.mu.Lock()
	epoch := c.epoch
	started := c.started
	c.mu.Unlock()
	if !started {
		return 0
	}
	return time.Duration(float64(time.Since(epoch)) / c.cfg.TimeScale)
}

// Injector builds a fault injector sharing this cluster's fabric,
// schedule offsets scaled by the cluster's time scale, fault
// application serialized with the world lock when one exists.
func (c *Cluster) Injector() *Injector {
	inj := NewFabricInjector(c.fabric, c.cfg.TimeScale)
	if c.cfg.Serialize {
		inj.SetSerializer(&c.world)
	}
	return inj
}

// NetStats aggregates every node's traffic counters.
func (c *Cluster) NetStats() NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total NetStats
	for _, n := range c.nodes {
		s := n.NetStats()
		total.Sent += s.Sent
		total.SentBytes += s.SentBytes
		total.Received += s.Received
		total.Dropped += s.Dropped
		total.Delayed += s.Delayed
		total.Shaped += s.Shaped
	}
	return total
}

// Size returns the number of nodes in the cluster.
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}
