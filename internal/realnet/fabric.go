package realnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Fabric applies network-level faults across a set of live nodes with
// the simulator's exact semantics: Partition REPLACES any previous
// grouping (nodes absent from every group form an implicit extra
// group, unreachable from all named ones), HealPartition clears all
// groups at once, and link shapes override a link independently of
// partitions — so overlapping partitions collapse under a single
// KindPartitionEnd and crashes compose freely with both.
//
// Fabric methods are safe to call from any goroutine; they only flip
// per-node drop/shape state, never touch protocol state.
type Fabric struct {
	mu    sync.Mutex
	nodes map[simnet.NodeID]*Node
	group map[simnet.NodeID]string
}

// NewFabric builds a fabric over the given nodes (copied; register
// later additions with Register).
func NewFabric(nodes map[simnet.NodeID]*Node) *Fabric {
	f := &Fabric{nodes: make(map[simnet.NodeID]*Node, len(nodes)), group: make(map[simnet.NodeID]string)}
	for id, n := range nodes {
		f.nodes[id] = n
	}
	return f
}

// Register adds a node to the fabric.
func (f *Fabric) Register(n *Node) {
	f.mu.Lock()
	f.nodes[n.ID()] = n
	f.mu.Unlock()
}

// Node returns the live node with the given id, or nil.
func (f *Fabric) Node(id simnet.NodeID) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[id]
}

// Partition splits the network into the given groups, replacing any
// previous partition. Nodes listed in no group land in an implicit
// group of their own ("" — simnet's zero group), mutually reachable
// but cut off from every named group.
func (f *Fabric) Partition(groups ...[]simnet.NodeID) {
	f.mu.Lock()
	f.group = make(map[simnet.NodeID]string)
	for i, g := range groups {
		name := groupName(i)
		for _, id := range g {
			f.group[id] = name
		}
	}
	f.pushBlockedLocked()
	f.mu.Unlock()
}

// HealPartition removes every partition at once, whatever sequence of
// Partition calls produced the current state.
func (f *Fabric) HealPartition() {
	f.mu.Lock()
	f.group = make(map[simnet.NodeID]string)
	f.pushBlockedLocked()
	f.mu.Unlock()
}

// Reachable reports whether the current partition state lets from talk
// to to — the live analogue of simnet's group check (link loss, even
// total, does not affect reachability, matching the simulator).
func (f *Fabric) Reachable(from, to simnet.NodeID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.group) == 0 {
		return true
	}
	return f.group[from] == f.group[to]
}

// pushBlockedLocked recomputes every node's blocked-peer set from the
// group map and installs it. Caller holds f.mu.
func (f *Fabric) pushBlockedLocked() {
	partitioned := len(f.group) > 0
	for id, n := range f.nodes {
		blocked := make(map[simnet.NodeID]bool)
		if partitioned {
			g := f.group[id]
			for peer := range f.nodes {
				if peer != id && f.group[peer] != g {
					blocked[peer] = true
				}
			}
		}
		n.SetBlocked(blocked)
	}
}

// DegradeLink raises latency/loss on both directions of a↔b,
// mirroring simnet.SetLinkBidirectional. Unknown endpoints are
// ignored, as the simulator harmlessly records overrides for ids it
// never routes.
func (f *Fabric) DegradeLink(a, b simnet.NodeID, latency time.Duration, loss float64) {
	f.mu.Lock()
	na, nb := f.nodes[a], f.nodes[b]
	f.mu.Unlock()
	if na != nil {
		na.ShapeLink(b, latency, loss)
	}
	if nb != nil {
		nb.ShapeLink(a, latency, loss)
	}
}

// RestoreLink clears both directions of a↔b back to native latency and
// zero loss. Restoring a link that was never degraded is a no-op.
func (f *Fabric) RestoreLink(a, b simnet.NodeID) {
	f.mu.Lock()
	na, nb := f.nodes[a], f.nodes[b]
	f.mu.Unlock()
	if na != nil {
		na.ClearShapedLink(b)
	}
	if nb != nil {
		nb.ClearShapedLink(a)
	}
}

func groupName(i int) string { return fmt.Sprintf("g%d", i) }
