// Package metrics quantifies resilience. The paper's working
// definition — "the persistence of reliable requirements satisfaction
// when facing change" — becomes a measurable quantity here: a
// SatisfactionTrace samples whether requirements hold over time and
// reports persistence (time-weighted satisfied fraction), outage
// counts, MTTR and MTBF; a LatencyRecorder summarizes distributions
// (mean, percentiles) for timeliness properties; counters track
// delivery availability. Every experiment in the repository reports its
// results through these types.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// sample is one satisfaction observation.
type sample struct {
	at time.Duration
	ok bool
}

// SatisfactionTrace records requirement satisfaction over time. Record
// observations in nondecreasing time order.
type SatisfactionTrace struct {
	samples []sample
}

// Record appends one observation.
func (tr *SatisfactionTrace) Record(at time.Duration, ok bool) {
	tr.samples = append(tr.samples, sample{at: at, ok: ok})
}

// Len returns the number of observations.
func (tr *SatisfactionTrace) Len() int { return len(tr.samples) }

// Persistence returns the fraction of observations that were satisfied
// (sample-weighted R). It returns 0 for an empty trace.
func (tr *SatisfactionTrace) Persistence() float64 {
	if len(tr.samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range tr.samples {
		if s.ok {
			ok++
		}
	}
	return float64(ok) / float64(len(tr.samples))
}

// TimeWeightedPersistence returns the fraction of the interval [first
// sample, end] during which the requirement was satisfied, holding each
// observation's value until the next observation.
func (tr *SatisfactionTrace) TimeWeightedPersistence(end time.Duration) float64 {
	if len(tr.samples) == 0 {
		return 0
	}
	start := tr.samples[0].at
	if end <= start {
		return 0
	}
	var satisfied time.Duration
	for i, s := range tr.samples {
		next := end
		if i+1 < len(tr.samples) {
			next = tr.samples[i+1].at
		}
		if next > end {
			next = end
		}
		if s.ok && next > s.at {
			satisfied += next - s.at
		}
	}
	return float64(satisfied) / float64(end-start)
}

// Outages returns the number of satisfied→unsatisfied transitions. A
// trace that starts unsatisfied counts that as an outage too.
func (tr *SatisfactionTrace) Outages() int {
	n := 0
	prev := true
	for _, s := range tr.samples {
		if prev && !s.ok {
			n++
		}
		prev = s.ok
	}
	return n
}

// MTTR returns the mean duration of completed outages (unsatisfied
// periods that ended with a satisfied observation).
func (tr *SatisfactionTrace) MTTR() time.Duration {
	var total time.Duration
	count := 0
	var outageStart time.Duration
	inOutage := false
	prev := true
	for _, s := range tr.samples {
		switch {
		case prev && !s.ok:
			inOutage = true
			outageStart = s.at
		case inOutage && s.ok:
			total += s.at - outageStart
			count++
			inOutage = false
		}
		prev = s.ok
	}
	if count == 0 {
		return 0
	}
	return total / time.Duration(count)
}

// MTBF returns the mean time between the starts of consecutive outages.
func (tr *SatisfactionTrace) MTBF() time.Duration {
	var starts []time.Duration
	prev := true
	for _, s := range tr.samples {
		if prev && !s.ok {
			starts = append(starts, s.at)
		}
		prev = s.ok
	}
	if len(starts) < 2 {
		return 0
	}
	return (starts[len(starts)-1] - starts[0]) / time.Duration(len(starts)-1)
}

// OutageEnds returns the times at which completed outages ended (the
// first satisfied observation after each unsatisfied stretch).
func (tr *SatisfactionTrace) OutageEnds() []time.Duration {
	var out []time.Duration
	inOutage := false
	prev := true
	for _, s := range tr.samples {
		switch {
		case prev && !s.ok:
			inOutage = true
		case inOutage && s.ok:
			out = append(out, s.at)
			inOutage = false
		}
		prev = s.ok
	}
	return out
}

// LongestOutage returns the duration of the longest completed or
// still-open outage, with end bounding an open one.
func (tr *SatisfactionTrace) LongestOutage(end time.Duration) time.Duration {
	var longest time.Duration
	var outageStart time.Duration
	inOutage := false
	prev := true
	for _, s := range tr.samples {
		switch {
		case prev && !s.ok:
			inOutage = true
			outageStart = s.at
		case inOutage && s.ok:
			if d := s.at - outageStart; d > longest {
				longest = d
			}
			inOutage = false
		}
		prev = s.ok
	}
	if inOutage {
		if d := end - outageStart; d > longest {
			longest = d
		}
	}
	return longest
}

// LatencyRecorder accumulates a latency distribution.
type LatencyRecorder struct {
	samples []time.Duration
	sorted  bool
}

// Record appends one latency sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int { return len(r.samples) }

// Mean returns the average latency (0 when empty).
func (r *LatencyRecorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range r.samples {
		total += s
	}
	return total / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (p in (0,100]); it uses the
// nearest-rank method. Returns 0 when empty.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Max returns the largest sample.
func (r *LatencyRecorder) Max() time.Duration {
	var max time.Duration
	for _, s := range r.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Ratio is a success/total availability counter.
type Ratio struct {
	Success int
	Total   int
}

// RecordOutcome adds one trial.
func (r *Ratio) RecordOutcome(ok bool) {
	r.Total++
	if ok {
		r.Success++
	}
}

// Value returns Success/Total (0 when empty).
func (r Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Success) / float64(r.Total)
}

// String formats the ratio as "97.5% (39/40)".
func (r Ratio) String() string {
	return fmt.Sprintf("%.1f%% (%d/%d)", r.Value()*100, r.Success, r.Total)
}
