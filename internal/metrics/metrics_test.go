package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

// trace with outage from 10s to 30s over [0,60].
func outageTrace() *SatisfactionTrace {
	tr := &SatisfactionTrace{}
	for t := 0; t <= 60; t += 10 {
		ok := !(t >= 10 && t < 30)
		tr.Record(sec(t), ok)
	}
	return tr
}

func TestPersistenceSampleWeighted(t *testing.T) {
	tr := outageTrace() // samples at 0..60: unsat at 10,20 → 5/7
	want := 5.0 / 7.0
	if got := tr.Persistence(); got != want {
		t.Fatalf("Persistence = %v, want %v", got, want)
	}
}

func TestPersistenceEmpty(t *testing.T) {
	tr := &SatisfactionTrace{}
	if tr.Persistence() != 0 || tr.TimeWeightedPersistence(sec(10)) != 0 {
		t.Fatal("empty trace should report 0")
	}
	if tr.Len() != 0 {
		t.Fatal("Len != 0")
	}
}

func TestTimeWeightedPersistence(t *testing.T) {
	tr := outageTrace()
	// Unsatisfied during [10,30) = 20s of 60s → R = 40/60.
	want := 40.0 / 60.0
	if got := tr.TimeWeightedPersistence(sec(60)); got != want {
		t.Fatalf("R = %v, want %v", got, want)
	}
}

func TestTimeWeightedPersistenceEndBeforeStart(t *testing.T) {
	tr := &SatisfactionTrace{}
	tr.Record(sec(10), true)
	if tr.TimeWeightedPersistence(sec(5)) != 0 {
		t.Fatal("end before start should be 0")
	}
}

func TestOutagesMTTRMTBF(t *testing.T) {
	tr := &SatisfactionTrace{}
	// Outage 1: 10-20; outage 2: 40-45 (recorded at 5s granularity).
	points := []struct {
		t  int
		ok bool
	}{
		{0, true}, {5, true}, {10, false}, {15, false}, {20, true},
		{25, true}, {30, true}, {35, true}, {40, false}, {45, true}, {50, true},
	}
	for _, p := range points {
		tr.Record(sec(p.t), p.ok)
	}
	if got := tr.Outages(); got != 2 {
		t.Fatalf("Outages = %d, want 2", got)
	}
	// MTTR = ((20-10) + (45-40)) / 2 = 7.5s
	if got := tr.MTTR(); got != 7500*time.Millisecond {
		t.Fatalf("MTTR = %v, want 7.5s", got)
	}
	// MTBF = (40-10)/1 = 30s
	if got := tr.MTBF(); got != sec(30) {
		t.Fatalf("MTBF = %v, want 30s", got)
	}
	// Longest outage = 10s.
	if got := tr.LongestOutage(sec(50)); got != sec(10) {
		t.Fatalf("LongestOutage = %v, want 10s", got)
	}
}

func TestTraceStartingUnsatisfiedCountsOutage(t *testing.T) {
	tr := &SatisfactionTrace{}
	tr.Record(0, false)
	tr.Record(sec(5), true)
	if tr.Outages() != 1 {
		t.Fatalf("Outages = %d, want 1", tr.Outages())
	}
	if tr.MTTR() != sec(5) {
		t.Fatalf("MTTR = %v", tr.MTTR())
	}
}

func TestOpenOutage(t *testing.T) {
	tr := &SatisfactionTrace{}
	tr.Record(0, true)
	tr.Record(sec(10), false)
	if tr.MTTR() != 0 {
		t.Fatal("open outage should not contribute to MTTR")
	}
	if got := tr.LongestOutage(sec(60)); got != sec(50) {
		t.Fatalf("LongestOutage = %v, want 50s (open, bounded by end)", got)
	}
	if tr.MTBF() != 0 {
		t.Fatal("single outage has no MTBF")
	}
}

// Property: persistence is always in [0,1] and equals 1 iff all
// observations are satisfied.
func TestPersistenceBoundsProperty(t *testing.T) {
	prop := func(bits []bool) bool {
		tr := &SatisfactionTrace{}
		all := true
		for i, b := range bits {
			tr.Record(time.Duration(i)*time.Second, b)
			all = all && b
		}
		p := tr.Persistence()
		if p < 0 || p > 1 {
			return false
		}
		if len(bits) > 0 && all != (p == 1) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	r := &LatencyRecorder{}
	if r.Mean() != 0 || r.Percentile(50) != 0 || r.Max() != 0 || r.Count() != 0 {
		t.Fatal("empty recorder should report zeros")
	}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if got := r.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v, want 50.5ms", got)
	}
	if got := r.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := r.Percentile(95); got != 95*time.Millisecond {
		t.Fatalf("p95 = %v, want 95ms", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	if got := r.Max(); got != 100*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestLatencyRecorderInterleavedRecordAndQuery(t *testing.T) {
	r := &LatencyRecorder{}
	r.Record(30 * time.Millisecond)
	r.Record(10 * time.Millisecond)
	if got := r.Percentile(50); got != 10*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	r.Record(20 * time.Millisecond) // after a sorted query
	if got := r.Percentile(100); got != 30*time.Millisecond {
		t.Fatalf("p100 after new record = %v", got)
	}
	if got := r.Percentile(0.1); got != 10*time.Millisecond {
		t.Fatalf("tiny percentile = %v, want first sample", got)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio nonzero")
	}
	for i := 0; i < 39; i++ {
		r.RecordOutcome(true)
	}
	r.RecordOutcome(false)
	if r.Value() != 0.975 {
		t.Fatalf("Value = %v", r.Value())
	}
	if got := r.String(); got != "97.5% (39/40)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: time-weighted persistence of an alternating trace with
// equal dwell times converges to ~0.5.
func TestTimeWeightedAlternating(t *testing.T) {
	tr := &SatisfactionTrace{}
	for i := 0; i < 100; i++ {
		tr.Record(time.Duration(i)*time.Second, i%2 == 0)
	}
	got := tr.TimeWeightedPersistence(sec(100))
	want := 50.0 / 99.0 // 50 satisfied seconds over the 99s span... plus tail
	// With end=100: last sample (i=99, unsat) holds 1s; satisfied = 50s
	// of span 100s.
	want = 50.0 / 100.0
	if got != want {
		t.Fatalf("R = %v, want %v", got, want)
	}
}

func TestMTBFWithoutOutages(t *testing.T) {
	tr := &SatisfactionTrace{}
	for i := 0; i < 5; i++ {
		tr.Record(sec(i*10), true)
	}
	if tr.MTBF() != 0 {
		t.Fatalf("MTBF with zero outages = %v, want 0", tr.MTBF())
	}
	if tr.Outages() != 0 {
		t.Fatalf("Outages = %d, want 0", tr.Outages())
	}
}

func TestTimeWeightedPersistenceEndAtFirstSample(t *testing.T) {
	tr := &SatisfactionTrace{}
	tr.Record(sec(10), true)
	tr.Record(sec(20), false)
	// A zero-length interval has no time to weight.
	if got := tr.TimeWeightedPersistence(sec(10)); got != 0 {
		t.Fatalf("R over empty interval = %v, want 0", got)
	}
}

func TestPercentileBoundaries(t *testing.T) {
	r := &LatencyRecorder{}
	for _, d := range []int{50, 10, 30, 20, 40} {
		r.Record(time.Duration(d) * time.Millisecond)
	}
	// p→0 clamps the nearest rank to the first (smallest) sample.
	if got := r.Percentile(0.0001); got != 10*time.Millisecond {
		t.Fatalf("P~0 = %v, want 10ms", got)
	}
	// p=100 is the largest sample.
	if got := r.Percentile(100); got != 50*time.Millisecond {
		t.Fatalf("P100 = %v, want 50ms", got)
	}
	if got := r.Percentile(50); got != 30*time.Millisecond {
		t.Fatalf("P50 = %v, want 30ms", got)
	}
	empty := &LatencyRecorder{}
	if empty.Percentile(100) != 0 {
		t.Fatal("empty recorder percentile should be 0")
	}
}

func TestTraceNeverSatisfied(t *testing.T) {
	tr := &SatisfactionTrace{}
	tr.Record(0, false)
	tr.Record(sec(10), false)
	tr.Record(sec(20), false)
	if got := tr.Outages(); got != 1 {
		t.Fatalf("Outages = %d, want 1 (the initial one, never recovered)", got)
	}
	if tr.MTTR() != 0 {
		t.Fatal("never-recovering outage must not contribute to MTTR")
	}
	if got := tr.TimeWeightedPersistence(sec(30)); got != 0 {
		t.Fatalf("R = %v, want 0", got)
	}
	if got := tr.Persistence(); got != 0 {
		t.Fatalf("sample-weighted R = %v, want 0", got)
	}
	if got := tr.LongestOutage(sec(30)); got != sec(30) {
		t.Fatalf("LongestOutage = %v, want 30s", got)
	}
}
