package verify

import (
	"math"
	"testing"
)

func mustProb(t *testing.T, d *DTMC, from, to int, p float64) {
	t.Helper()
	if err := d.SetProb(from, to, p); err != nil {
		t.Fatal(err)
	}
}

// repairChain models up →(0.1) down →(0.5) up: a two-state
// failure/repair process with known closed-form behavior.
func repairChain(t *testing.T) (*DTMC, int, int) {
	t.Helper()
	d := NewDTMC()
	up := d.AddState("up")
	down := d.AddState("down")
	mustProb(t, d, up, up, 0.9)
	mustProb(t, d, up, down, 0.1)
	mustProb(t, d, down, up, 0.5)
	mustProb(t, d, down, down, 0.5)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d, up, down
}

func TestSetProbErrors(t *testing.T) {
	d := NewDTMC()
	d.AddState()
	if err := d.SetProb(0, 3, 0.5); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := d.SetProb(0, 0, 1.5); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := d.SetProb(0, 0, -0.1); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestValidateDetectsBadRow(t *testing.T) {
	d := NewDTMC()
	a := d.AddState()
	b := d.AddState()
	mustProb(t, d, a, b, 0.6) // row sums to 0.6
	if err := d.Validate(); err == nil {
		t.Fatal("row not summing to 1 accepted")
	}
}

func TestSetProbZeroRemovesEdge(t *testing.T) {
	d := NewDTMC()
	a := d.AddState()
	b := d.AddState()
	mustProb(t, d, a, b, 1)
	mustProb(t, d, a, b, 0)
	if err := d.Validate(); err != nil {
		t.Fatal("removing edge left invalid row:", err)
	}
}

func TestReachWithinRepairChain(t *testing.T) {
	d, _, down := repairChain(t)
	// From down, P(reach up within 1 step) = 0.5;
	// within 2 steps = 0.5 + 0.5*0.5 = 0.75.
	p1 := d.ReachWithin("up", 1)
	if math.Abs(p1[down]-0.5) > 1e-12 {
		t.Fatalf("P = %v, want 0.5", p1[down])
	}
	p2 := d.ReachWithin("up", 2)
	if math.Abs(p2[down]-0.75) > 1e-12 {
		t.Fatalf("P = %v, want 0.75", p2[down])
	}
	// Target states have probability 1 at any bound.
	if p1[0] != 1 {
		t.Fatalf("target state P = %v", p1[0])
	}
	// k=0: only target states count.
	p0 := d.ReachWithin("up", 0)
	if p0[down] != 0 {
		t.Fatalf("k=0 P = %v, want 0", p0[down])
	}
}

func TestReachUnbounded(t *testing.T) {
	d, _, down := repairChain(t)
	p := d.Reach("up", 1e-12, 0)
	if math.Abs(p[down]-1) > 1e-9 {
		t.Fatalf("P = %v, want →1 (repair always eventually succeeds)", p[down])
	}
}

func TestReachWithAbsorbingFailure(t *testing.T) {
	// ok →0.5 ok, →0.3 goal, →0.2 dead (absorbing).
	d := NewDTMC()
	ok := d.AddState("ok")
	goal := d.AddState("goal")
	dead := d.AddState("dead")
	mustProb(t, d, ok, ok, 0.5)
	mustProb(t, d, ok, goal, 0.3)
	mustProb(t, d, ok, dead, 0.2)
	mustProb(t, d, goal, goal, 1)
	mustProb(t, d, dead, dead, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p := d.Reach("goal", 1e-12, 0)
	// P = 0.3 / (1 - 0.5) = 0.6
	if math.Abs(p[ok]-0.6) > 1e-9 {
		t.Fatalf("P = %v, want 0.6", p[ok])
	}
	if p[dead] != 0 {
		t.Fatalf("absorbing failure P = %v, want 0", p[dead])
	}
}

func TestBoundedUntil(t *testing.T) {
	// a-states must persist until b; passing through a non-a state
	// zeroes the probability.
	d := NewDTMC()
	s0 := d.AddState("a")
	bad := d.AddState() // not a, not b
	s2 := d.AddState("a")
	tgt := d.AddState("b")
	mustProb(t, d, s0, bad, 0.5)
	mustProb(t, d, s0, s2, 0.5)
	mustProb(t, d, bad, tgt, 1)
	mustProb(t, d, s2, tgt, 1)
	mustProb(t, d, tgt, tgt, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p := d.BoundedUntil("a", "b", 5)
	// Only the path through s2 counts: 0.5.
	if math.Abs(p[s0]-0.5) > 1e-12 {
		t.Fatalf("P[a U<=5 b] = %v, want 0.5", p[s0])
	}
	// Compare: plain reachability counts both paths.
	r := d.ReachWithin("b", 5)
	if math.Abs(r[s0]-1) > 1e-12 {
		t.Fatalf("P[F<=5 b] = %v, want 1", r[s0])
	}
}

func TestSteadyStateRepairChain(t *testing.T) {
	d, up, down := repairChain(t)
	pi := d.SteadyState(10000)
	// Stationary: pi_down = 0.1/(0.1+0.5) = 1/6, pi_up = 5/6.
	if math.Abs(pi[up]-5.0/6) > 1e-6 || math.Abs(pi[down]-1.0/6) > 1e-6 {
		t.Fatalf("steady state = %v, want [5/6 1/6]", pi)
	}
}

func TestSteadyStateEmpty(t *testing.T) {
	d := NewDTMC()
	if got := d.SteadyState(10); got != nil {
		t.Fatalf("SteadyState on empty chain = %v", got)
	}
}

func TestHolds(t *testing.T) {
	d := NewDTMC()
	s := d.AddState("x")
	if !d.Holds(s, "x") || d.Holds(s, "y") || d.Holds(5, "x") {
		t.Fatal("Holds wrong")
	}
	if d.NumStates() != 1 {
		t.Fatal("NumStates wrong")
	}
}
