// Package verify provides the formal verification machinery the paper's
// modeling roadmap calls for (§IV, Fig 2): Kripke structures as the
// analyzable representation of a system facet, a CTL model checker for
// design-time verification of resilience properties, three-valued LTL
// runtime monitors (obtained by formula progression) that port the same
// properties to runtime (§VII), and discrete-time Markov chains for
// quantitative, probability-bounded properties ("uncertainty
// quantification" in the paper's terms).
package verify

import (
	"fmt"
	"sort"
)

// Prop is an atomic proposition name.
type Prop string

// Kripke is a finite transition system with propositional labels. Build
// with NewKripke, AddState and AddTransition.
type Kripke struct {
	labels  []map[Prop]bool
	trans   [][]int
	initial []int
}

// NewKripke returns an empty structure.
func NewKripke() *Kripke { return &Kripke{} }

// AddState appends a state labeled with the given propositions and
// returns its index.
func (k *Kripke) AddState(props ...Prop) int {
	lab := make(map[Prop]bool, len(props))
	for _, p := range props {
		lab[p] = true
	}
	k.labels = append(k.labels, lab)
	k.trans = append(k.trans, nil)
	return len(k.labels) - 1
}

// NumStates returns the number of states.
func (k *Kripke) NumStates() int { return len(k.labels) }

// AddTransition adds the edge from→to. Out-of-range indices are an
// error.
func (k *Kripke) AddTransition(from, to int) error {
	if from < 0 || from >= len(k.labels) || to < 0 || to >= len(k.labels) {
		return fmt.Errorf("verify: transition %d→%d out of range (n=%d)", from, to, len(k.labels))
	}
	k.trans[from] = append(k.trans[from], to)
	return nil
}

// SetInitial marks states as initial.
func (k *Kripke) SetInitial(states ...int) {
	k.initial = append(k.initial, states...)
}

// Initial returns the initial states.
func (k *Kripke) Initial() []int {
	out := make([]int, len(k.initial))
	copy(out, k.initial)
	return out
}

// Holds reports whether p labels state s.
func (k *Kripke) Holds(s int, p Prop) bool {
	return s >= 0 && s < len(k.labels) && k.labels[s][p]
}

// Successors returns the outgoing edges of s (shared slice; treat as
// read-only).
func (k *Kripke) Successors(s int) []int { return k.trans[s] }

// Totalize adds a self-loop to every deadlock state, making the
// transition relation total as CTL semantics requires.
func (k *Kripke) Totalize() {
	for s := range k.trans {
		if len(k.trans[s]) == 0 {
			k.trans[s] = append(k.trans[s], s)
		}
	}
}

// predecessors builds the reverse adjacency once for backward fixpoints.
func (k *Kripke) predecessors() [][]int {
	pred := make([][]int, len(k.labels))
	for s, outs := range k.trans {
		for _, t := range outs {
			pred[t] = append(pred[t], s)
		}
	}
	return pred
}

// StateSet is a set of state indices.
type StateSet map[int]bool

// Sorted returns the members in ascending order.
func (s StateSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for i := range s {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
