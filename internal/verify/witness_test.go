package verify

import "testing"

func TestReachPathShortest(t *testing.T) {
	// 0→1→2→3 and shortcut 0→3.
	k := NewKripke()
	for i := 0; i < 4; i++ {
		k.AddState()
	}
	mustTrans(t, k, 0, 1)
	mustTrans(t, k, 1, 2)
	mustTrans(t, k, 2, 3)
	mustTrans(t, k, 0, 3)
	path, ok := ReachPath(k, 0, StateSet{3: true})
	if !ok || len(path) != 2 || path[0] != 0 || path[1] != 3 {
		t.Fatalf("path = %v, want [0 3]", path)
	}
}

func TestReachPathSelf(t *testing.T) {
	k := NewKripke()
	k.AddState()
	path, ok := ReachPath(k, 0, StateSet{0: true})
	if !ok || len(path) != 1 || path[0] != 0 {
		t.Fatalf("path = %v", path)
	}
}

func TestReachPathUnreachable(t *testing.T) {
	k := NewKripke()
	k.AddState()
	k.AddState() // no edges
	if _, ok := ReachPath(k, 0, StateSet{1: true}); ok {
		t.Fatal("found path to unreachable state")
	}
	if _, ok := ReachPath(k, 7, StateSet{0: true}); ok {
		t.Fatal("out-of-range start accepted")
	}
}

func TestDiagnoseAGFindsViolationPath(t *testing.T) {
	// ok(0) → ok(1) → bad(2); AG ok fails with witness 0→1→2.
	k := NewKripke()
	s0 := k.AddState("ok")
	s1 := k.AddState("ok")
	s2 := k.AddState()
	mustTrans(t, k, s0, s1)
	mustTrans(t, k, s1, s2)
	mustTrans(t, k, s2, s2)
	k.SetInitial(s0)

	path, found := DiagnoseAG(k, AP("ok"))
	if !found {
		t.Fatal("no diagnosis for failing AG")
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Fatalf("witness = %v, want [0 1 2]", path)
	}
	// The last state of the witness violates the property.
	if k.Holds(path[len(path)-1], "ok") {
		t.Fatal("witness does not end in a violating state")
	}
}

func TestDiagnoseAGHoldingProperty(t *testing.T) {
	k := NewKripke()
	s0 := k.AddState("ok")
	mustTrans(t, k, s0, s0)
	k.SetInitial(s0)
	if _, found := DiagnoseAG(k, AP("ok")); found {
		t.Fatal("diagnosis produced for holding property")
	}
}

func TestDiagnoseAGUnreachableViolation(t *testing.T) {
	// A violating state exists but is unreachable: AG holds on the
	// reachable fragment, so Check passes but CheckCTL's global view
	// has bad states. DiagnoseAG must not fabricate a path.
	k := NewKripke()
	s0 := k.AddState("ok")
	k.AddState() // bad, unreachable
	mustTrans(t, k, s0, s0)
	k.SetInitial(s0)
	if _, found := DiagnoseAG(k, AP("ok")); found {
		t.Fatal("path to unreachable violation fabricated")
	}
}

func TestLabelsSorted(t *testing.T) {
	k := NewKripke()
	s := k.AddState("b", "a", "c")
	got := k.Labels(s)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("labels = %v", got)
	}
	if k.Labels(99) != nil {
		t.Fatal("labels of bad state")
	}
}
