package verify

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseCTL parses a CTL formula from text. Grammar (precedence low to
// high): "->" (right assoc), "|", "&", then unary operators
// !, AG, AF, AX, EG, EF, EX, and the until forms "A[φ U ψ]" and
// "E[φ U ψ]". Atoms are proposition names ([A-Za-z0-9_:./-]+); "true"
// and "false" are literals. Example:
//
//	AG(svc:control -> EF all-up)
func ParseCTL(input string) (CTLFormula, error) {
	p := &parser{tokens: lex(input)}
	f, err := p.parseCTLExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("verify: unexpected trailing input %q", p.peek())
	}
	return f, nil
}

// ParseLTL parses an LTL formula from text. Grammar mirrors ParseCTL
// with temporal operators G, F, X, the infix "U", and bounded forms
// "F<=k" and "G<=k". Example:
//
//	G(alarm -> F<=3 handled)
func ParseLTL(input string) (LTLFormula, error) {
	p := &parser{tokens: lex(input)}
	f, err := p.parseLTLExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("verify: unexpected trailing input %q", p.peek())
	}
	return f, nil
}

// --- lexer ---

// lex splits the input into tokens: parens, brackets, operators and
// atoms. Atoms are ASCII ([A-Za-z0-9_:./-]); any other byte becomes a
// single-byte token the parser will reject or pass through verbatim.
func lex(input string) []string {
	var tokens []string
	i := 0
	isAtomRune := func(r byte) bool {
		return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9') || strings.IndexByte("_:./-", r) >= 0
	}
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == '[' || c == ']' || c == '!' || c == '&' || c == '|':
			tokens = append(tokens, string(c))
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '>':
			tokens = append(tokens, "->")
			i += 2
		case c == '<' && i+1 < len(input) && input[i+1] == '=':
			tokens = append(tokens, "<=")
			i += 2
		default:
			j := i
			for j < len(input) && isAtomRune(input[j]) {
				// "-" is valid inside atoms but "-​>" was handled above;
				// stop an atom before "->".
				if input[j] == '-' && j+1 < len(input) && input[j+1] == '>' {
					break
				}
				j++
			}
			if j == i {
				// Byte-preserving: string(c) would UTF-8-expand the
				// byte and change the text on a render round-trip.
				tokens = append(tokens, input[i:i+1])
				i++
				continue
			}
			tokens = append(tokens, input[i:j])
			i = j
		}
	}
	return tokens
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	tokens []string
	pos    int
}

func (p *parser) peek() string {
	if p.pos < len(p.tokens) {
		return p.tokens[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) eof() bool { return p.pos >= len(p.tokens) }

func (p *parser) expect(tok string) error {
	if p.peek() != tok {
		return fmt.Errorf("verify: expected %q, got %q", tok, p.peek())
	}
	p.pos++
	return nil
}

// isAtomToken reports whether tok can be a proposition name.
func isAtomToken(tok string) bool {
	if tok == "" {
		return false
	}
	switch tok {
	case "(", ")", "[", "]", "!", "&", "|", "->", "<=", "U":
		return false
	}
	return true
}

// --- CTL parsing ---

func (p *parser) parseCTLExpr() (CTLFormula, error) {
	left, err := p.parseCTLOr()
	if err != nil {
		return nil, err
	}
	if p.peek() == "->" {
		p.next()
		right, err := p.parseCTLExpr() // right associative
		if err != nil {
			return nil, err
		}
		return Implies(left, right), nil
	}
	return left, nil
}

func (p *parser) parseCTLOr() (CTLFormula, error) {
	left, err := p.parseCTLAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.next()
		right, err := p.parseCTLAnd()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *parser) parseCTLAnd() (CTLFormula, error) {
	left, err := p.parseCTLUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.next()
		right, err := p.parseCTLUnary()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

func (p *parser) parseCTLUnary() (CTLFormula, error) {
	tok := p.peek()
	switch tok {
	case "!":
		p.next()
		f, err := p.parseCTLUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case "(":
		p.next()
		f, err := p.parseCTLExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	case "AG", "AF", "AX", "EG", "EF", "EX":
		p.next()
		f, err := p.parseCTLUnary()
		if err != nil {
			return nil, err
		}
		switch tok {
		case "AG":
			return AG(f), nil
		case "AF":
			return AF(f), nil
		case "AX":
			return AX(f), nil
		case "EG":
			return EG(f), nil
		case "EF":
			return EF(f), nil
		default:
			return EX(f), nil
		}
	case "A", "E":
		p.next()
		if err := p.expect("["); err != nil {
			return nil, err
		}
		a, err := p.parseCTLExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("U"); err != nil {
			return nil, err
		}
		b, err := p.parseCTLExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if tok == "A" {
			return AU(a, b), nil
		}
		return EU(a, b), nil
	case "true":
		p.next()
		return True(), nil
	case "false":
		p.next()
		return Not(True()), nil
	default:
		if isAtomToken(tok) {
			p.next()
			return AP(Prop(tok)), nil
		}
		return nil, fmt.Errorf("verify: unexpected token %q", tok)
	}
}

// --- LTL parsing ---

func (p *parser) parseLTLExpr() (LTLFormula, error) {
	left, err := p.parseLTLOr()
	if err != nil {
		return nil, err
	}
	switch p.peek() {
	case "->":
		p.next()
		right, err := p.parseLTLExpr()
		if err != nil {
			return nil, err
		}
		return LImplies(left, right), nil
	case "U":
		p.next()
		right, err := p.parseLTLExpr()
		if err != nil {
			return nil, err
		}
		return LUntil(left, right), nil
	}
	return left, nil
}

func (p *parser) parseLTLOr() (LTLFormula, error) {
	left, err := p.parseLTLAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.next()
		right, err := p.parseLTLAnd()
		if err != nil {
			return nil, err
		}
		left = LOr(left, right)
	}
	return left, nil
}

func (p *parser) parseLTLAnd() (LTLFormula, error) {
	left, err := p.parseLTLUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.next()
		right, err := p.parseLTLUnary()
		if err != nil {
			return nil, err
		}
		left = LAnd(left, right)
	}
	return left, nil
}

func (p *parser) parseLTLUnary() (LTLFormula, error) {
	tok := p.peek()
	switch tok {
	case "!":
		p.next()
		f, err := p.parseLTLUnary()
		if err != nil {
			return nil, err
		}
		return LNot(f), nil
	case "(":
		p.next()
		f, err := p.parseLTLExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	case "G", "F":
		p.next()
		// Bounded form: G<=k / F<=k.
		if p.peek() == "<=" {
			p.next()
			kTok := p.next()
			k, err := strconv.Atoi(kTok)
			if err != nil || k < 0 {
				return nil, fmt.Errorf("verify: bad bound %q", kTok)
			}
			f, err := p.parseLTLUnary()
			if err != nil {
				return nil, err
			}
			if tok == "G" {
				return LGloballyFor(k, f), nil
			}
			return LEventuallyWithin(k, f), nil
		}
		f, err := p.parseLTLUnary()
		if err != nil {
			return nil, err
		}
		if tok == "G" {
			return LGlobally(f), nil
		}
		return LEventually(f), nil
	case "X":
		p.next()
		f, err := p.parseLTLUnary()
		if err != nil {
			return nil, err
		}
		return LNext(f), nil
	case "true":
		p.next()
		return LTrue(), nil
	case "false":
		p.next()
		return LFalse(), nil
	default:
		if isAtomToken(tok) {
			p.next()
			return LAP(Prop(tok)), nil
		}
		return nil, fmt.Errorf("verify: unexpected token %q", tok)
	}
}
