package verify_test

import (
	"fmt"

	"repro/internal/verify"
)

// A two-state failure/repair system: "up" can fail, "down" can repair.
// Design-time verification shows the system can always recover, and
// quantitative analysis bounds how fast.
func Example() {
	k := verify.NewKripke()
	up := k.AddState("up")
	down := k.AddState()
	_ = k.AddTransition(up, up)
	_ = k.AddTransition(up, down)
	_ = k.AddTransition(down, up)
	k.SetInitial(up)

	recoverable, _ := verify.ParseCTL("AG EF up")
	alwaysUp, _ := verify.ParseCTL("AG up")
	fmt.Println("AG EF up:", verify.Check(k, recoverable))
	fmt.Println("AG up:   ", verify.Check(k, alwaysUp))

	// Output:
	// AG EF up: true
	// AG up:    false
}

// Runtime monitors carry design-time properties to runtime: this
// response property ("every alarm handled within 2 steps") is
// monitored over a live trace with three-valued verdicts.
func ExampleMonitor() {
	f, _ := verify.ParseLTL("G(alarm -> F<=2 handled)")
	m := verify.NewMonitor(f)

	obs := func(props ...verify.Prop) map[verify.Prop]bool {
		out := make(map[verify.Prop]bool)
		for _, p := range props {
			out[p] = true
		}
		return out
	}
	fmt.Println(m.Step(obs()))               // nothing happening
	fmt.Println(m.Step(obs("alarm")))        // obligation opens
	fmt.Println(m.Step(obs("handled")))      // obligation met
	fmt.Println(m.Step(obs("alarm")), "...") // another alarm
	m.Step(obs())
	fmt.Println(m.Step(obs())) // deadline missed

	// Output:
	// unknown
	// unknown
	// unknown
	// unknown ...
	// false
}

// DTMCs answer quantitative resilience questions: the probability that
// a failed component repairs within k steps.
func ExampleDTMC_reachWithin() {
	d := verify.NewDTMC()
	up := d.AddState("up")
	down := d.AddState("down")
	_ = d.SetProb(up, up, 0.9)
	_ = d.SetProb(up, down, 0.1)
	_ = d.SetProb(down, up, 0.5)
	_ = d.SetProb(down, down, 0.5)

	p := d.ReachWithin("up", 3)
	fmt.Printf("P[repair within 3 steps] = %.3f\n", p[down])

	// Output:
	// P[repair within 3 steps] = 0.875
}
