package verify

import "testing"

// FuzzParseCTL checks the parser never panics and that accepted
// formulas render and re-parse stably (parse∘print is a fixpoint).
func FuzzParseCTL(f *testing.F) {
	for _, seed := range []string{
		"AG(svc:control -> EF all-up)",
		"E[a U b] & !c",
		"A[true U x] | EX y",
		"((((p))))",
		"!!p",
		"AG EF AG EF q",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ParseCTL(input)
		if err != nil {
			return
		}
		rendered := formula.String()
		again, err := ParseCTL(rendered)
		if err != nil {
			t.Fatalf("rendered form %q of %q does not re-parse: %v", rendered, input, err)
		}
		if again.String() != rendered {
			t.Fatalf("print∘parse not stable: %q → %q", rendered, again.String())
		}
	})
}

// FuzzParseLTL mirrors FuzzParseCTL for the linear logic, and also
// runs every accepted formula through a short monitor to check
// progression never panics.
func FuzzParseLTL(f *testing.F) {
	for _, seed := range []string{
		"G(alarm -> F<=3 handled)",
		"p U (q U r)",
		"X X X p",
		"F<=0 p & G<=0 q",
		"!F !G p",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		formula, err := ParseLTL(input)
		if err != nil {
			return
		}
		rendered := formula.String()
		if _, err := ParseLTL(rendered); err != nil {
			t.Fatalf("rendered form %q of %q does not re-parse: %v", rendered, input, err)
		}
		m := NewMonitor(formula)
		m.Step(map[Prop]bool{"p": true, "alarm": true})
		m.Step(map[Prop]bool{"q": true})
		m.Step(nil)
	})
}
