package verify

import (
	"fmt"
	"sort"
	"strings"
)

// Verdict is the three-valued outcome of runtime monitoring (LTL3):
// a property can be irrevocably satisfied, irrevocably violated, or
// still undetermined on the trace observed so far.
type Verdict int

// Monitoring verdicts.
const (
	VerdictUnknown Verdict = iota + 1
	VerdictTrue
	VerdictFalse
)

func (v Verdict) String() string {
	switch v {
	case VerdictTrue:
		return "true"
	case VerdictFalse:
		return "false"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// LTLFormula is a linear-temporal-logic formula, monitored over traces
// by formula progression. Construct with the L-prefixed constructors.
type LTLFormula interface {
	// progress rewrites the formula given the current observation.
	progress(obs map[Prop]bool) LTLFormula
	// finalize evaluates the formula at the end of a finite trace
	// (LTLf semantics: pending F/U/X become false, G becomes true).
	finalize() bool
	String() string
}

type ltlTrue struct{}
type ltlFalse struct{}
type ltlAP struct{ p Prop }
type ltlNot struct{ f LTLFormula }
type ltlAnd struct{ fs []LTLFormula }
type ltlOr struct{ fs []LTLFormula }
type ltlNext struct{ f LTLFormula }
type ltlUntil struct{ a, b LTLFormula }
type ltlGlobally struct{ f LTLFormula }
type ltlEventually struct{ f LTLFormula }
type ltlBoundedEventually struct {
	k int
	f LTLFormula
}
type ltlBoundedGlobally struct {
	k int
	f LTLFormula
}

// LTrue is the always-satisfied formula.
func LTrue() LTLFormula { return ltlTrue{} }

// LFalse is the never-satisfied formula.
func LFalse() LTLFormula { return ltlFalse{} }

// LAP holds when the proposition is observed.
func LAP(p Prop) LTLFormula { return ltlAP{p: p} }

// LNot negates f.
func LNot(f LTLFormula) LTLFormula { return simplifyNot(f) }

// LAnd is the conjunction of fs.
func LAnd(fs ...LTLFormula) LTLFormula { return simplifyAnd(fs) }

// LOr is the disjunction of fs.
func LOr(fs ...LTLFormula) LTLFormula { return simplifyOr(fs) }

// LImplies is a→b.
func LImplies(a, b LTLFormula) LTLFormula { return LOr(LNot(a), b) }

// LNext holds if f holds at the next observation.
func LNext(f LTLFormula) LTLFormula { return ltlNext{f: f} }

// LUntil holds if a holds until b eventually holds.
func LUntil(a, b LTLFormula) LTLFormula { return ltlUntil{a: a, b: b} }

// LGlobally holds if f holds at every observation.
func LGlobally(f LTLFormula) LTLFormula { return ltlGlobally{f: f} }

// LEventually holds if f eventually holds.
func LEventually(f LTLFormula) LTLFormula { return ltlEventually{f: f} }

// LEventuallyWithin holds if f holds within k further observations
// (k=0 means now).
func LEventuallyWithin(k int, f LTLFormula) LTLFormula {
	return ltlBoundedEventually{k: k, f: f}
}

// LGloballyFor holds if f holds now and for the next k observations.
func LGloballyFor(k int, f LTLFormula) LTLFormula {
	return ltlBoundedGlobally{k: k, f: f}
}

// --- simplification ---

func simplifyNot(f LTLFormula) LTLFormula {
	switch g := f.(type) {
	case ltlTrue:
		return ltlFalse{}
	case ltlFalse:
		return ltlTrue{}
	case ltlNot:
		return g.f
	default:
		return ltlNot{f: f}
	}
}

func simplifyAnd(fs []LTLFormula) LTLFormula {
	flat := make([]LTLFormula, 0, len(fs))
	seen := make(map[string]bool)
	for _, f := range fs {
		switch g := f.(type) {
		case ltlTrue:
			continue
		case ltlFalse:
			return ltlFalse{}
		case ltlAnd:
			for _, inner := range g.fs {
				if s := inner.String(); !seen[s] {
					seen[s] = true
					flat = append(flat, inner)
				}
			}
		default:
			if s := f.String(); !seen[s] {
				seen[s] = true
				flat = append(flat, f)
			}
		}
	}
	switch len(flat) {
	case 0:
		return ltlTrue{}
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].String() < flat[j].String() })
	return ltlAnd{fs: flat}
}

func simplifyOr(fs []LTLFormula) LTLFormula {
	flat := make([]LTLFormula, 0, len(fs))
	seen := make(map[string]bool)
	for _, f := range fs {
		switch g := f.(type) {
		case ltlFalse:
			continue
		case ltlTrue:
			return ltlTrue{}
		case ltlOr:
			for _, inner := range g.fs {
				if s := inner.String(); !seen[s] {
					seen[s] = true
					flat = append(flat, inner)
				}
			}
		default:
			if s := f.String(); !seen[s] {
				seen[s] = true
				flat = append(flat, f)
			}
		}
	}
	switch len(flat) {
	case 0:
		return ltlFalse{}
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].String() < flat[j].String() })
	return ltlOr{fs: flat}
}

// --- progression ---

func (ltlTrue) progress(map[Prop]bool) LTLFormula  { return ltlTrue{} }
func (ltlFalse) progress(map[Prop]bool) LTLFormula { return ltlFalse{} }

func (f ltlAP) progress(obs map[Prop]bool) LTLFormula {
	if obs[f.p] {
		return ltlTrue{}
	}
	return ltlFalse{}
}

func (f ltlNot) progress(obs map[Prop]bool) LTLFormula {
	return simplifyNot(f.f.progress(obs))
}

func (f ltlAnd) progress(obs map[Prop]bool) LTLFormula {
	out := make([]LTLFormula, len(f.fs))
	for i, g := range f.fs {
		out[i] = g.progress(obs)
	}
	return simplifyAnd(out)
}

func (f ltlOr) progress(obs map[Prop]bool) LTLFormula {
	out := make([]LTLFormula, len(f.fs))
	for i, g := range f.fs {
		out[i] = g.progress(obs)
	}
	return simplifyOr(out)
}

func (f ltlNext) progress(map[Prop]bool) LTLFormula { return f.f }

func (f ltlUntil) progress(obs map[Prop]bool) LTLFormula {
	// a U b  ⇒  prog(b) ∨ (prog(a) ∧ (a U b))
	return simplifyOr([]LTLFormula{
		f.b.progress(obs),
		simplifyAnd([]LTLFormula{f.a.progress(obs), f}),
	})
}

func (f ltlGlobally) progress(obs map[Prop]bool) LTLFormula {
	return simplifyAnd([]LTLFormula{f.f.progress(obs), f})
}

func (f ltlEventually) progress(obs map[Prop]bool) LTLFormula {
	return simplifyOr([]LTLFormula{f.f.progress(obs), f})
}

func (f ltlBoundedEventually) progress(obs map[Prop]bool) LTLFormula {
	now := f.f.progress(obs)
	if f.k <= 0 {
		return now
	}
	return simplifyOr([]LTLFormula{now, ltlBoundedEventually{k: f.k - 1, f: f.f}})
}

func (f ltlBoundedGlobally) progress(obs map[Prop]bool) LTLFormula {
	now := f.f.progress(obs)
	if f.k <= 0 {
		return now
	}
	return simplifyAnd([]LTLFormula{now, ltlBoundedGlobally{k: f.k - 1, f: f.f}})
}

// --- finalization (LTLf end-of-trace semantics) ---

func (ltlTrue) finalize() bool  { return true }
func (ltlFalse) finalize() bool { return false }
func (f ltlAP) finalize() bool  { return false } // no observation left
func (f ltlNot) finalize() bool { return !f.f.finalize() }

func (f ltlAnd) finalize() bool {
	for _, g := range f.fs {
		if !g.finalize() {
			return false
		}
	}
	return true
}

func (f ltlOr) finalize() bool {
	for _, g := range f.fs {
		if g.finalize() {
			return true
		}
	}
	return false
}

func (f ltlNext) finalize() bool              { return false }
func (f ltlUntil) finalize() bool             { return false }
func (f ltlGlobally) finalize() bool          { return true }
func (f ltlEventually) finalize() bool        { return false }
func (f ltlBoundedEventually) finalize() bool { return false }
func (f ltlBoundedGlobally) finalize() bool   { return true }

// --- strings ---

func (ltlTrue) String() string  { return "true" }
func (ltlFalse) String() string { return "false" }
func (f ltlAP) String() string  { return string(f.p) }
func (f ltlNot) String() string { return "!" + f.f.String() }

func joinLTL(fs []LTLFormula, sep string) string {
	parts := make([]string, len(fs))
	for i, g := range fs {
		parts[i] = g.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (f ltlAnd) String() string  { return joinLTL(f.fs, " & ") }
func (f ltlOr) String() string   { return joinLTL(f.fs, " | ") }
func (f ltlNext) String() string { return "X " + f.f.String() }
func (f ltlUntil) String() string {
	return fmt.Sprintf("(%s U %s)", f.a, f.b)
}
func (f ltlGlobally) String() string   { return "G " + f.f.String() }
func (f ltlEventually) String() string { return "F " + f.f.String() }
func (f ltlBoundedEventually) String() string {
	return fmt.Sprintf("F<=%d %s", f.k, f.f)
}
func (f ltlBoundedGlobally) String() string {
	return fmt.Sprintf("G<=%d %s", f.k, f.f)
}

// Monitor tracks one LTL property over a growing trace. The verdict
// latches: once true or false, further observations do not change it.
type Monitor struct {
	formula LTLFormula
	cur     LTLFormula
	verdict Verdict
	steps   int
}

// NewMonitor builds a monitor for f.
func NewMonitor(f LTLFormula) *Monitor {
	return &Monitor{formula: f, cur: f, verdict: VerdictUnknown}
}

// Step feeds one observation (the set of currently true propositions)
// and returns the updated verdict.
func (m *Monitor) Step(obs map[Prop]bool) Verdict {
	if m.verdict != VerdictUnknown {
		return m.verdict
	}
	m.steps++
	m.cur = m.cur.progress(obs)
	switch m.cur.(type) {
	case ltlTrue:
		m.verdict = VerdictTrue
	case ltlFalse:
		m.verdict = VerdictFalse
	}
	return m.verdict
}

// Verdict returns the current verdict.
func (m *Monitor) Verdict() Verdict { return m.verdict }

// Steps returns the number of observations consumed.
func (m *Monitor) Steps() int { return m.steps }

// Formula returns the original property.
func (m *Monitor) Formula() LTLFormula { return m.formula }

// Pending returns the current residual obligation (useful for
// diagnosis: what still has to happen).
func (m *Monitor) Pending() LTLFormula { return m.cur }

// Reset restarts the monitor on an empty trace.
func (m *Monitor) Reset() {
	m.cur = m.formula
	m.verdict = VerdictUnknown
	m.steps = 0
}

// EvalTrace checks f on a complete finite trace under LTLf semantics
// and returns a definite verdict.
func EvalTrace(f LTLFormula, trace []map[Prop]bool) bool {
	cur := f
	for _, obs := range trace {
		cur = cur.progress(obs)
		switch cur.(type) {
		case ltlTrue:
			return true
		case ltlFalse:
			return false
		}
	}
	return cur.finalize()
}
