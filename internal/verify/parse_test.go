package verify

import (
	"testing"
)

func TestParseCTLRoundTrips(t *testing.T) {
	tests := []struct {
		input string
		want  string // String() of the parsed formula
	}{
		{"p", "p"},
		{"true", "true"},
		{"!p", "!p"},
		{"p & q", "(p & q)"},
		{"AG p", "!E[true U !p]"},
		{"EF p", "E[true U p]"},
		{"EX p", "EX p"},
		{"EG p", "EG p"},
		{"E[p U q]", "E[p U q]"},
		{"svc:control", "svc:control"},
		{"z0:temp_ok", "z0:temp_ok"},
	}
	for _, tt := range tests {
		t.Run(tt.input, func(t *testing.T) {
			f, err := ParseCTL(tt.input)
			if err != nil {
				t.Fatal(err)
			}
			if f.String() != tt.want {
				t.Fatalf("parsed %q, want %q", f.String(), tt.want)
			}
		})
	}
}

func TestParseCTLSemantics(t *testing.T) {
	// Parse and check on the branch structure: s0 → {a-loop, b-loop}.
	k := branchKS(t)
	tests := []struct {
		input string
		want  bool
	}{
		{"a", true},
		{"AG (a | b)", true},
		{"AF b", false},
		{"EF b", true},
		{"EG a", true},
		{"E[a U b]", true},
		{"A[a U b]", false},
		{"a -> EF b", true},
		{"!b", true},
		{"false", false},
		{"AG(a -> (EF b | EG a))", true},
		{"AX a | AX b", false},
		{"EX a & EX b", true},
	}
	for _, tt := range tests {
		t.Run(tt.input, func(t *testing.T) {
			f, err := ParseCTL(tt.input)
			if err != nil {
				t.Fatal(err)
			}
			if got := Check(k, f); got != tt.want {
				t.Fatalf("Check(%q) = %v, want %v", tt.input, got, tt.want)
			}
		})
	}
}

func TestParseCTLErrors(t *testing.T) {
	bad := []string{
		"", "(p", "p)", "p &", "AG", "A[p q]", "E[p U q", "p q",
		"& p", "A[", "->", "p -> ",
	}
	for _, input := range bad {
		if _, err := ParseCTL(input); err == nil {
			t.Errorf("ParseCTL(%q) accepted", input)
		}
	}
}

func TestParseLTLRoundTrips(t *testing.T) {
	tests := []struct {
		input string
		want  string
	}{
		{"G p", "G p"},
		{"F p", "F p"},
		{"X p", "X p"},
		{"p U q", "(p U q)"},
		{"F<=3 p", "F<=3 p"},
		{"G<=2 p", "G<=2 p"},
		{"G(alarm -> F<=3 handled)", "G (!alarm | F<=3 handled)"},
		{"!p & q", "(!p & q)"},
		{"true", "true"},
		{"false", "false"},
	}
	for _, tt := range tests {
		t.Run(tt.input, func(t *testing.T) {
			f, err := ParseLTL(tt.input)
			if err != nil {
				t.Fatal(err)
			}
			if f.String() != tt.want {
				t.Fatalf("parsed %q, want %q", f.String(), tt.want)
			}
		})
	}
}

func TestParseLTLSemantics(t *testing.T) {
	trace := []map[Prop]bool{obs("a"), obs("a"), obs("a", "b")}
	tests := []struct {
		input string
		want  bool
	}{
		{"G a", true},
		{"F b", true},
		{"a U b", true},
		{"F c", false},
		{"F<=1 b", false},
		{"F<=2 b", true},
		{"G<=1 a", true},
		{"X X b", true},    // b holds at the third observation
		{"X X X b", false}, // past end of trace
	}
	for _, tt := range tests {
		t.Run(tt.input, func(t *testing.T) {
			f, err := ParseLTL(tt.input)
			if err != nil {
				t.Fatal(err)
			}
			if got := EvalTrace(f, trace); got != tt.want {
				t.Fatalf("EvalTrace(%q) = %v, want %v", tt.input, got, tt.want)
			}
		})
	}
}

func TestParseLTLErrors(t *testing.T) {
	bad := []string{
		"", "G", "F<= p", "F<=x p", "F<=-1 p", "(p U", "p |",
	}
	for _, input := range bad {
		if _, err := ParseLTL(input); err == nil {
			t.Errorf("ParseLTL(%q) accepted", input)
		}
	}
}

func TestLexer(t *testing.T) {
	toks := lex("AG(svc:control -> EF all-up)")
	want := []string{"AG", "(", "svc:control", "->", "EF", "all-up", ")"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// "a & b | c" parses as (a&b) | c.
	f, err := ParseCTL("a & b | c")
	if err != nil {
		t.Fatal(err)
	}
	k := NewKripke()
	s := k.AddState("c")
	if err := k.AddTransition(s, s); err != nil {
		t.Fatal(err)
	}
	k.SetInitial(s)
	if !Check(k, f) {
		t.Fatal("c alone should satisfy (a&b)|c")
	}
	// "a -> b -> c" is right associative: a -> (b -> c).
	f2, err := ParseCTL("a -> b -> c")
	if err != nil {
		t.Fatal(err)
	}
	if !Check(k, f2) {
		t.Fatal("vacuous implication should hold")
	}
}
