package verify

import (
	"testing"
)

// chainKS builds s0 → s1 → s2 → s2(loop) labeled a; a; b.
func chainKS(t *testing.T) *Kripke {
	t.Helper()
	k := NewKripke()
	s0 := k.AddState("a")
	s1 := k.AddState("a")
	s2 := k.AddState("b")
	mustTrans(t, k, s0, s1)
	mustTrans(t, k, s1, s2)
	mustTrans(t, k, s2, s2)
	k.SetInitial(s0)
	return k
}

func mustTrans(t *testing.T, k *Kripke, a, b int) {
	t.Helper()
	if err := k.AddTransition(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestAddTransitionOutOfRange(t *testing.T) {
	k := NewKripke()
	k.AddState()
	if err := k.AddTransition(0, 5); err == nil {
		t.Fatal("out-of-range transition accepted")
	}
	if err := k.AddTransition(-1, 0); err == nil {
		t.Fatal("negative transition accepted")
	}
}

func TestTotalizeAddsSelfLoops(t *testing.T) {
	k := NewKripke()
	s0 := k.AddState()
	k.Totalize()
	if got := k.Successors(s0); len(got) != 1 || got[0] != s0 {
		t.Fatalf("successors = %v", got)
	}
}

func TestCTLOnChain(t *testing.T) {
	k := chainKS(t)
	tests := []struct {
		name string
		f    CTLFormula
		want bool
	}{
		{"AP a holds initially", AP("a"), true},
		{"AP b does not hold initially", AP("b"), false},
		{"EX a", EX(AP("a")), true},
		{"AX a", AX(AP("a")), true},
		{"EF b", EF(AP("b")), true},
		{"AF b", AF(AP("b")), true},
		{"AG a fails (b state reachable)", AG(AP("a")), false},
		{"AG (a or b)", AG(Or(AP("a"), AP("b"))), true},
		{"EG a fails (no a-cycle)", EG(AP("a")), false},
		{"EG true", EG(True()), true},
		{"E[a U b]", EU(AP("a"), AP("b")), true},
		{"A[a U b]", AU(AP("a"), AP("b")), true},
		{"not b", Not(AP("b")), true},
		{"implication", Implies(AP("a"), EF(AP("b"))), true},
		{"and", And(AP("a"), EX(AP("a"))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Check(k, tt.f); got != tt.want {
				t.Fatalf("Check(%v) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

// branchKS: s0 branches to s1 (a-loop) and s2 (b-loop).
func branchKS(t *testing.T) *Kripke {
	t.Helper()
	k := NewKripke()
	s0 := k.AddState("a")
	s1 := k.AddState("a")
	s2 := k.AddState("b")
	mustTrans(t, k, s0, s1)
	mustTrans(t, k, s0, s2)
	mustTrans(t, k, s1, s1)
	mustTrans(t, k, s2, s2)
	k.SetInitial(s0)
	return k
}

func TestCTLOnBranch(t *testing.T) {
	k := branchKS(t)
	tests := []struct {
		name string
		f    CTLFormula
		want bool
	}{
		{"EG a (left branch)", EG(AP("a")), true},
		{"AF b fails (left branch never b)", AF(AP("b")), false},
		{"EF b", EF(AP("b")), true},
		{"AX a fails", AX(AP("a")), false},
		{"EX b", EX(AP("b")), true},
		{"A[a U b] fails", AU(AP("a"), AP("b")), false},
		{"E[a U b]", EU(AP("a"), AP("b")), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Check(k, tt.f); got != tt.want {
				t.Fatalf("Check(%v) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

// mutexKS models two processes where the property "never both critical"
// holds — the classic AG !(c1 & c2).
func TestCTLMutexExample(t *testing.T) {
	k := NewKripke()
	idle := k.AddState()
	p1 := k.AddState("c1")
	p2 := k.AddState("c2")
	mustTrans(t, k, idle, p1)
	mustTrans(t, k, idle, p2)
	mustTrans(t, k, p1, idle)
	mustTrans(t, k, p2, idle)
	k.SetInitial(idle)
	if !Check(k, AG(Not(And(AP("c1"), AP("c2"))))) {
		t.Fatal("mutual exclusion should hold")
	}
	// Liveness: from anywhere, each process can reach its critical
	// section again.
	if !Check(k, AG(EF(AP("c1")))) {
		t.Fatal("c1 should remain reachable")
	}
}

func TestCounterexamples(t *testing.T) {
	k := branchKS(t)
	bad := Counterexamples(k, AF(AP("b")))
	if len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("counterexamples = %v, want [0]", bad)
	}
	if got := Counterexamples(k, EF(AP("b"))); got != nil {
		t.Fatalf("unexpected counterexamples %v", got)
	}
}

func TestCheckCTLReturnsStateSet(t *testing.T) {
	k := chainKS(t)
	sat := CheckCTL(k, AP("a"))
	got := sat.Sorted()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("sat = %v", got)
	}
}

func TestFormulaStrings(t *testing.T) {
	f := AG(Implies(AP("hot"), AF(AP("cool"))))
	if f.String() == "" {
		t.Fatal("empty string")
	}
	if got := EU(AP("a"), AP("b")).String(); got != "E[a U b]" {
		t.Fatalf("String = %q", got)
	}
	if got := And().String(); got != "true" {
		t.Fatalf("empty And = %q", got)
	}
	if got := EG(AP("x")).String(); got != "EG x" {
		t.Fatalf("String = %q", got)
	}
	if got := EX(AP("x")).String(); got != "EX x" {
		t.Fatalf("String = %q", got)
	}
	if got := Not(AP("x")).String(); got != "!x" {
		t.Fatalf("String = %q", got)
	}
	if got := True().String(); got != "true" {
		t.Fatalf("String = %q", got)
	}
	if got := And(AP("a"), AP("b")).String(); got != "(a & b)" {
		t.Fatalf("String = %q", got)
	}
}

func TestEmptyAndIsTrue(t *testing.T) {
	k := chainKS(t)
	if !Check(k, And()) {
		t.Fatal("empty conjunction should hold")
	}
	if Check(k, Or()) {
		t.Fatal("empty disjunction should not hold")
	}
}

// TestCTLDualityProperty cross-checks AF/EG duality on a family of
// random structures: AF f ≡ ¬EG ¬f must agree state-by-state.
func TestCTLDualityProperty(t *testing.T) {
	for seed := 0; seed < 25; seed++ {
		k := randomKS(seed, 12)
		f := AP("p")
		af := CheckCTL(k, AF(f))
		eg := CheckCTL(k, EG(Not(f)))
		for s := 0; s < k.NumStates(); s++ {
			if af[s] == eg[s] {
				t.Fatalf("seed %d state %d: AF p and EG !p both %v", seed, s, af[s])
			}
		}
		// EF/AG duality too.
		ef := CheckCTL(k, EF(f))
		ag := CheckCTL(k, AG(Not(f)))
		for s := 0; s < k.NumStates(); s++ {
			if ef[s] == ag[s] {
				t.Fatalf("seed %d state %d: EF p and AG !p both %v", seed, s, ef[s])
			}
		}
	}
}

// randomKS builds a pseudo-random total Kripke structure.
func randomKS(seed, n int) *Kripke {
	k := NewKripke()
	x := uint64(seed)*2654435761 + 1
	next := func(mod int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(mod))
	}
	for i := 0; i < n; i++ {
		if next(2) == 0 {
			k.AddState("p")
		} else {
			k.AddState()
		}
	}
	for i := 0; i < n; i++ {
		edges := 1 + next(3)
		for e := 0; e < edges; e++ {
			_ = k.AddTransition(i, next(n))
		}
	}
	k.SetInitial(0)
	return k
}
