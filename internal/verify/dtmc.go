package verify

import (
	"fmt"
	"math"
)

// DTMC is a discrete-time Markov chain for quantitative ("PCTL-style")
// analysis of resilience properties, e.g. "from the disrupted state,
// the system recovers within 10 steps with probability ≥ 0.99". Build
// with NewDTMC, AddState and SetProb, then Validate.
type DTMC struct {
	labels []map[Prop]bool
	rows   []map[int]float64
}

// NewDTMC returns an empty chain.
func NewDTMC() *DTMC { return &DTMC{} }

// AddState appends a state labeled with props and returns its index.
func (d *DTMC) AddState(props ...Prop) int {
	lab := make(map[Prop]bool, len(props))
	for _, p := range props {
		lab[p] = true
	}
	d.labels = append(d.labels, lab)
	d.rows = append(d.rows, make(map[int]float64))
	return len(d.labels) - 1
}

// NumStates returns the number of states.
func (d *DTMC) NumStates() int { return len(d.labels) }

// SetProb sets the transition probability from→to. Setting 0 removes
// the edge.
func (d *DTMC) SetProb(from, to int, p float64) error {
	if from < 0 || from >= len(d.rows) || to < 0 || to >= len(d.rows) {
		return fmt.Errorf("verify: transition %d→%d out of range (n=%d)", from, to, len(d.rows))
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("verify: probability %v out of [0,1]", p)
	}
	if p == 0 {
		delete(d.rows[from], to)
		return nil
	}
	d.rows[from][to] = p
	return nil
}

// Holds reports whether p labels state s.
func (d *DTMC) Holds(s int, p Prop) bool {
	return s >= 0 && s < len(d.labels) && d.labels[s][p]
}

// Validate checks that every state's outgoing probabilities sum to 1
// (within 1e-9). States with no outgoing edges are treated as absorbing
// and given an implicit self-loop by the analyses.
func (d *DTMC) Validate() error {
	for s, row := range d.rows {
		if len(row) == 0 {
			continue
		}
		sum := 0.0
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("verify: state %d outgoing probability sum %v != 1", s, sum)
		}
	}
	return nil
}

// statesWhere returns the states labeled with p.
func (d *DTMC) statesWhere(p Prop) map[int]bool {
	out := make(map[int]bool)
	for s := range d.labels {
		if d.labels[s][p] {
			out[s] = true
		}
	}
	return out
}

// ReachWithin returns, per state, the probability of reaching a
// target-labeled state within k steps (bounded reachability,
// P[F<=k target]).
func (d *DTMC) ReachWithin(target Prop, k int) []float64 {
	tgt := d.statesWhere(target)
	n := d.NumStates()
	cur := make([]float64, n)
	for s := range tgt {
		cur[s] = 1
	}
	for step := 0; step < k; step++ {
		next := make([]float64, n)
		for s := 0; s < n; s++ {
			if tgt[s] {
				next[s] = 1
				continue
			}
			row := d.rows[s]
			if len(row) == 0 { // absorbing
				next[s] = cur[s]
				continue
			}
			acc := 0.0
			for t, p := range row {
				acc += p * cur[t]
			}
			next[s] = acc
		}
		cur = next
	}
	return cur
}

// Reach returns, per state, the probability of eventually reaching a
// target-labeled state (unbounded reachability, P[F target]), computed
// by value iteration to precision eps.
func (d *DTMC) Reach(target Prop, eps float64, maxIter int) []float64 {
	if eps <= 0 {
		eps = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	tgt := d.statesWhere(target)
	n := d.NumStates()
	cur := make([]float64, n)
	for s := range tgt {
		cur[s] = 1
	}
	for iter := 0; iter < maxIter; iter++ {
		delta := 0.0
		for s := 0; s < n; s++ {
			if tgt[s] {
				continue
			}
			row := d.rows[s]
			if len(row) == 0 {
				continue
			}
			acc := 0.0
			for t, p := range row {
				acc += p * cur[t]
			}
			if diff := math.Abs(acc - cur[s]); diff > delta {
				delta = diff
			}
			cur[s] = acc
		}
		if delta < eps {
			break
		}
	}
	return cur
}

// BoundedUntil returns, per state, P[a U<=k b]: the probability that a
// b-labeled state is reached within k steps along a path that stays in
// a-labeled states until then.
func (d *DTMC) BoundedUntil(a, b Prop, k int) []float64 {
	n := d.NumStates()
	bSet := d.statesWhere(b)
	aSet := d.statesWhere(a)
	cur := make([]float64, n)
	for s := range bSet {
		cur[s] = 1
	}
	for step := 0; step < k; step++ {
		next := make([]float64, n)
		for s := 0; s < n; s++ {
			switch {
			case bSet[s]:
				next[s] = 1
			case !aSet[s]:
				next[s] = 0
			default:
				row := d.rows[s]
				if len(row) == 0 {
					next[s] = cur[s]
					continue
				}
				acc := 0.0
				for t, p := range row {
					acc += p * cur[t]
				}
				next[s] = acc
			}
		}
		cur = next
	}
	return cur
}

// SteadyState estimates the long-run occupancy distribution by power
// iteration from the uniform distribution. The chain should be
// irreducible and aperiodic for this to converge to the unique
// stationary distribution.
func (d *DTMC) SteadyState(iters int) []float64 {
	n := d.NumStates()
	if n == 0 {
		return nil
	}
	if iters <= 0 {
		iters = 1000
	}
	cur := make([]float64, n)
	for s := range cur {
		cur[s] = 1 / float64(n)
	}
	for i := 0; i < iters; i++ {
		next := make([]float64, n)
		for s := 0; s < n; s++ {
			row := d.rows[s]
			if len(row) == 0 {
				next[s] += cur[s] // absorbing
				continue
			}
			for t, p := range row {
				next[t] += cur[s] * p
			}
		}
		cur = next
	}
	return cur
}
