package verify

import (
	"fmt"
	"testing"
)

// ringKS builds an n-state ring with every 10th state labeled "goal".
func ringKS(n int) *Kripke {
	k := NewKripke()
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			k.AddState("goal")
		} else {
			k.AddState()
		}
	}
	for i := 0; i < n; i++ {
		_ = k.AddTransition(i, (i+1)%n)
	}
	k.SetInitial(0)
	return k
}

// BenchmarkCTLFixpoints measures AG(EF goal) — nested fixpoints — on
// growing rings.
func BenchmarkCTLFixpoints(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("states-%d", n), func(b *testing.B) {
			k := ringKS(n)
			f := AG(EF(AP("goal")))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !Check(k, f) {
					b.Fatal("property should hold on a ring")
				}
			}
		})
	}
}

// BenchmarkLTLMonitorStep measures one progression step of a realistic
// response property.
func BenchmarkLTLMonitorStep(b *testing.B) {
	f := LGlobally(LImplies(LAP("alarm"), LEventuallyWithin(5, LAP("handled"))))
	m := NewMonitor(f)
	alarm := map[Prop]bool{"alarm": true}
	handled := map[Prop]bool{"handled": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			m.Step(alarm)
		} else {
			m.Step(handled)
		}
	}
}

// BenchmarkDTMCBoundedReach measures 100-step bounded reachability on
// a 1000-state chain.
func BenchmarkDTMCBoundedReach(b *testing.B) {
	d := NewDTMC()
	const n = 1000
	for i := 0; i < n; i++ {
		if i == n-1 {
			d.AddState("goal")
		} else {
			d.AddState()
		}
	}
	for i := 0; i < n-1; i++ {
		_ = d.SetProb(i, i+1, 0.9)
		_ = d.SetProb(i, i, 0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.ReachWithin("goal", 100)
	}
}

// BenchmarkParseCTL measures formula parsing.
func BenchmarkParseCTL(b *testing.B) {
	const input = "AG(svc:control -> (EF all-up & !E[fault U svc:down]))"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseCTL(input); err != nil {
			b.Fatal(err)
		}
	}
}
