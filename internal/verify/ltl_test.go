package verify

import (
	"testing"
	"testing/quick"
)

// obs builds an observation from the listed true propositions.
func obs(props ...Prop) map[Prop]bool {
	m := make(map[Prop]bool, len(props))
	for _, p := range props {
		m[p] = true
	}
	return m
}

func TestVerdictString(t *testing.T) {
	if VerdictTrue.String() != "true" || VerdictFalse.String() != "false" || VerdictUnknown.String() != "unknown" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() != "verdict(9)" {
		t.Fatal("unknown verdict name wrong")
	}
}

func TestMonitorGlobally(t *testing.T) {
	m := NewMonitor(LGlobally(LAP("ok")))
	for i := 0; i < 5; i++ {
		if v := m.Step(obs("ok")); v != VerdictUnknown {
			t.Fatalf("step %d verdict = %v, want unknown (G can still fail)", i, v)
		}
	}
	if v := m.Step(obs()); v != VerdictFalse {
		t.Fatalf("verdict = %v, want false after violation", v)
	}
	// Latch: further good observations don't resurrect it.
	if v := m.Step(obs("ok")); v != VerdictFalse {
		t.Fatalf("latched verdict changed to %v", v)
	}
}

func TestMonitorEventually(t *testing.T) {
	m := NewMonitor(LEventually(LAP("done")))
	if v := m.Step(obs()); v != VerdictUnknown {
		t.Fatalf("verdict = %v", v)
	}
	if v := m.Step(obs("done")); v != VerdictTrue {
		t.Fatalf("verdict = %v, want true", v)
	}
}

func TestMonitorNext(t *testing.T) {
	m := NewMonitor(LNext(LAP("p")))
	if v := m.Step(obs("p")); v != VerdictUnknown {
		t.Fatalf("X p decided on first step: %v", v)
	}
	if v := m.Step(obs("p")); v != VerdictTrue {
		t.Fatalf("verdict = %v", v)
	}

	m2 := NewMonitor(LNext(LAP("p")))
	m2.Step(obs("p"))
	if v := m2.Step(obs()); v != VerdictFalse {
		t.Fatalf("verdict = %v", v)
	}
}

func TestMonitorUntil(t *testing.T) {
	m := NewMonitor(LUntil(LAP("wait"), LAP("go")))
	m.Step(obs("wait"))
	m.Step(obs("wait"))
	if v := m.Step(obs("go")); v != VerdictTrue {
		t.Fatalf("verdict = %v, want true", v)
	}

	m2 := NewMonitor(LUntil(LAP("wait"), LAP("go")))
	m2.Step(obs("wait"))
	if v := m2.Step(obs()); v != VerdictFalse {
		t.Fatalf("verdict = %v, want false (neither wait nor go)", v)
	}
}

func TestMonitorBoundedEventually(t *testing.T) {
	// F<=2 p: must see p at step 1, 2 or 3.
	m := NewMonitor(LEventuallyWithin(2, LAP("p")))
	m.Step(obs())
	m.Step(obs())
	if v := m.Step(obs()); v != VerdictFalse {
		t.Fatalf("verdict = %v, want false after deadline", v)
	}

	m2 := NewMonitor(LEventuallyWithin(2, LAP("p")))
	m2.Step(obs())
	if v := m2.Step(obs("p")); v != VerdictTrue {
		t.Fatalf("verdict = %v, want true before deadline", v)
	}
}

func TestMonitorBoundedGlobally(t *testing.T) {
	// G<=2 p: p must hold at steps 1..3, then the property is settled.
	m := NewMonitor(LGloballyFor(2, LAP("p")))
	m.Step(obs("p"))
	m.Step(obs("p"))
	if v := m.Step(obs("p")); v != VerdictTrue {
		t.Fatalf("verdict = %v, want true after window", v)
	}
	m2 := NewMonitor(LGloballyFor(2, LAP("p")))
	m2.Step(obs("p"))
	if v := m2.Step(obs()); v != VerdictFalse {
		t.Fatalf("verdict = %v, want false on violation", v)
	}
}

func TestMonitorResponseProperty(t *testing.T) {
	// G(alarm -> F<=2 handled): every alarm handled within 2 steps.
	f := LGlobally(LImplies(LAP("alarm"), LEventuallyWithin(2, LAP("handled"))))
	m := NewMonitor(f)
	m.Step(obs())
	m.Step(obs("alarm"))
	m.Step(obs())
	if v := m.Step(obs("handled")); v != VerdictUnknown {
		t.Fatalf("verdict = %v, want unknown (G keeps watching)", v)
	}
	// A second alarm that is never handled violates at the deadline.
	m.Step(obs("alarm"))
	m.Step(obs())
	m.Step(obs())
	if v := m.Step(obs()); v != VerdictFalse {
		t.Fatalf("verdict = %v, want false", v)
	}
}

func TestMonitorPendingAndReset(t *testing.T) {
	m := NewMonitor(LEventually(LAP("p")))
	m.Step(obs())
	if m.Pending().String() == "true" || m.Pending().String() == "false" {
		t.Fatal("pending should be residual obligation")
	}
	if m.Steps() != 1 {
		t.Fatalf("Steps = %d", m.Steps())
	}
	m.Reset()
	if m.Steps() != 0 || m.Verdict() != VerdictUnknown {
		t.Fatal("reset incomplete")
	}
	if m.Formula().String() != "F p" {
		t.Fatalf("Formula = %q", m.Formula())
	}
}

func TestEvalTraceFiniteSemantics(t *testing.T) {
	trace := []map[Prop]bool{obs("a"), obs("a"), obs("a", "b")}
	tests := []struct {
		name string
		f    LTLFormula
		want bool
	}{
		{"G a holds on full trace", LGlobally(LAP("a")), true},
		{"F b holds", LEventually(LAP("b")), true},
		{"F c pending at end → false", LEventually(LAP("c")), false},
		{"G b fails", LGlobally(LAP("b")), false},
		{"a U b holds", LUntil(LAP("a"), LAP("b")), true},
		{"X a holds", LNext(LAP("a")), true},
		{"X at end → false", LNext(LNext(LNext(LAP("a")))), false},
		{"!F c", LNot(LEventually(LAP("c"))), true},
		{"true", LTrue(), true},
		{"false", LFalse(), false},
		{"implication", LImplies(LAP("a"), LEventually(LAP("b"))), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EvalTrace(tt.f, trace); got != tt.want {
				t.Fatalf("EvalTrace(%v) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestEvalTraceEmptyTrace(t *testing.T) {
	if !EvalTrace(LGlobally(LAP("p")), nil) {
		t.Fatal("G p on empty trace should hold (vacuous)")
	}
	if EvalTrace(LEventually(LAP("p")), nil) {
		t.Fatal("F p on empty trace should fail")
	}
}

func TestSimplification(t *testing.T) {
	if got := LAnd(LTrue(), LAP("p"), LTrue()).String(); got != "p" {
		t.Fatalf("And simplification = %q", got)
	}
	if got := LAnd(LAP("p"), LFalse()).String(); got != "false" {
		t.Fatalf("And false = %q", got)
	}
	if got := LOr(LFalse(), LAP("p")).String(); got != "p" {
		t.Fatalf("Or simplification = %q", got)
	}
	if got := LOr(LTrue(), LAP("p")).String(); got != "true" {
		t.Fatalf("Or true = %q", got)
	}
	if got := LNot(LNot(LAP("p"))).String(); got != "p" {
		t.Fatalf("double negation = %q", got)
	}
	if got := LAnd(LAP("p"), LAP("p")).String(); got != "p" {
		t.Fatalf("dedup = %q", got)
	}
	if got := LAnd().String(); got != "true" {
		t.Fatalf("empty And = %q", got)
	}
	if got := LOr().String(); got != "false" {
		t.Fatalf("empty Or = %q", got)
	}
}

// Property: the monitor never grows without bound on G(p → F<=k q)
// style obligations because duplicate pending windows collapse.
func TestMonitorBoundedGrowth(t *testing.T) {
	f := LGlobally(LImplies(LAP("p"), LEventuallyWithin(5, LAP("q"))))
	m := NewMonitor(f)
	for i := 0; i < 1000; i++ {
		var o map[Prop]bool
		if i%2 == 0 {
			o = obs("p")
		} else {
			o = obs("p", "q")
		}
		m.Step(o)
		if n := len(m.Pending().String()); n > 500 {
			t.Fatalf("pending formula exploded to %d chars at step %d", n, i)
		}
	}
	if m.Verdict() != VerdictUnknown {
		t.Fatalf("verdict = %v", m.Verdict())
	}
}

// Property: EvalTrace(G p) is equivalent to "p in every observation",
// EvalTrace(F p) to "p in some observation".
func TestLTLQuickEquivalences(t *testing.T) {
	prop := func(bits []bool) bool {
		trace := make([]map[Prop]bool, len(bits))
		all, some := true, false
		for i, b := range bits {
			if b {
				trace[i] = obs("p")
				some = true
			} else {
				trace[i] = obs()
				all = false
			}
		}
		if EvalTrace(LGlobally(LAP("p")), trace) != all {
			return false
		}
		if len(bits) > 0 && EvalTrace(LEventually(LAP("p")), trace) != some {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLTLStrings(t *testing.T) {
	f := LGlobally(LImplies(LAP("a"), LEventuallyWithin(3, LAP("b"))))
	want := "G (!a | F<=3 b)"
	if f.String() != want {
		t.Fatalf("String = %q, want %q", f.String(), want)
	}
	if got := LUntil(LAP("a"), LAP("b")).String(); got != "(a U b)" {
		t.Fatalf("String = %q", got)
	}
	if got := LGloballyFor(2, LAP("p")).String(); got != "G<=2 p" {
		t.Fatalf("String = %q", got)
	}
	if got := LNext(LAP("p")).String(); got != "X p" {
		t.Fatalf("String = %q", got)
	}
}
