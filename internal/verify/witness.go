package verify

// ReachPath returns a shortest transition path from `from` to any
// state in target (BFS), including both endpoints, and whether one
// exists. A state already in target yields a single-element path.
func ReachPath(k *Kripke, from int, target StateSet) ([]int, bool) {
	if from < 0 || from >= k.NumStates() {
		return nil, false
	}
	if target[from] {
		return []int{from}, true
	}
	prev := make(map[int]int, k.NumStates())
	visited := make([]bool, k.NumStates())
	visited[from] = true
	queue := []int{from}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range k.Successors(s) {
			if visited[t] {
				continue
			}
			visited[t] = true
			prev[t] = s
			if target[t] {
				// Reconstruct.
				path := []int{t}
				for cur := t; cur != from; {
					cur = prev[cur]
					path = append(path, cur)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, true
			}
			queue = append(queue, t)
		}
	}
	return nil, false
}

// DiagnoseAG explains why AG(inner) fails: it returns a shortest path
// from an initial state to a reachable state violating inner. The
// second result is false when AG(inner) actually holds.
func DiagnoseAG(k *Kripke, inner CTLFormula) ([]int, bool) {
	sat := CheckCTL(k, inner)
	bad := make(StateSet)
	for s := 0; s < k.NumStates(); s++ {
		if !sat[s] {
			bad[s] = true
		}
	}
	if len(bad) == 0 {
		return nil, false
	}
	var best []int
	for _, init := range k.Initial() {
		if path, ok := ReachPath(k, init, bad); ok {
			if best == nil || len(path) < len(best) {
				best = path
			}
		}
	}
	return best, best != nil
}

// Labels returns the propositions holding in state s, sorted — used to
// render witness paths for humans.
func (k *Kripke) Labels(s int) []Prop {
	if s < 0 || s >= len(k.labels) {
		return nil
	}
	out := make([]Prop, 0, len(k.labels[s]))
	for p := range k.labels[s] {
		out = append(out, p)
	}
	sortProps(out)
	return out
}

func sortProps(ps []Prop) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
