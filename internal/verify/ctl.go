package verify

import (
	"fmt"
	"strings"
)

// CTLFormula is a computation-tree-logic formula. Construct with the
// package-level constructors (AP, Not, And, EX, EU, EG, …); the derived
// operators (AX, AF, AG, EF, AU, Implies) are provided as constructors
// that expand into the minimal basis {EX, EU, EG, ¬, ∧}.
type CTLFormula interface {
	// eval returns the set of states satisfying the formula.
	eval(k *Kripke, pred [][]int) StateSet
	String() string
}

// --- basis formula types ---

type ctlTrue struct{}

type ctlAP struct{ p Prop }

type ctlNot struct{ f CTLFormula }

type ctlAnd struct{ fs []CTLFormula }

type ctlEX struct{ f CTLFormula }

type ctlEU struct{ a, b CTLFormula }

type ctlEG struct{ f CTLFormula }

// True is the formula satisfied by every state.
func True() CTLFormula { return ctlTrue{} }

// AP is satisfied by states labeled with p.
func AP(p Prop) CTLFormula { return ctlAP{p: p} }

// Not negates f.
func Not(f CTLFormula) CTLFormula { return ctlNot{f: f} }

// And is the conjunction of fs (True when empty).
func And(fs ...CTLFormula) CTLFormula { return ctlAnd{fs: fs} }

// Or is the disjunction of fs.
func Or(fs ...CTLFormula) CTLFormula {
	neg := make([]CTLFormula, len(fs))
	for i, f := range fs {
		neg[i] = Not(f)
	}
	return Not(And(neg...))
}

// Implies is material implication a→b.
func Implies(a, b CTLFormula) CTLFormula { return Or(Not(a), b) }

// EX: some successor satisfies f.
func EX(f CTLFormula) CTLFormula { return ctlEX{f: f} }

// AX: all successors satisfy f.
func AX(f CTLFormula) CTLFormula { return Not(EX(Not(f))) }

// EU: along some path, a holds until b.
func EU(a, b CTLFormula) CTLFormula { return ctlEU{a: a, b: b} }

// EF: some path eventually reaches f.
func EF(f CTLFormula) CTLFormula { return EU(True(), f) }

// EG: some path satisfies f forever.
func EG(f CTLFormula) CTLFormula { return ctlEG{f: f} }

// AF: every path eventually reaches f.
func AF(f CTLFormula) CTLFormula { return Not(EG(Not(f))) }

// AG: f holds on every reachable state of every path.
func AG(f CTLFormula) CTLFormula { return Not(EF(Not(f))) }

// AU: along every path, a holds until b (strong until).
// A[a U b] ≡ ¬( E[¬b U (¬a ∧ ¬b)] ∨ EG ¬b ).
func AU(a, b CTLFormula) CTLFormula {
	return Not(Or(EU(Not(b), And(Not(a), Not(b))), EG(Not(b))))
}

// --- evaluation ---

func (ctlTrue) eval(k *Kripke, _ [][]int) StateSet {
	out := make(StateSet, k.NumStates())
	for s := 0; s < k.NumStates(); s++ {
		out[s] = true
	}
	return out
}

func (f ctlAP) eval(k *Kripke, _ [][]int) StateSet {
	out := make(StateSet)
	for s := 0; s < k.NumStates(); s++ {
		if k.Holds(s, f.p) {
			out[s] = true
		}
	}
	return out
}

func (f ctlNot) eval(k *Kripke, pred [][]int) StateSet {
	inner := f.f.eval(k, pred)
	out := make(StateSet)
	for s := 0; s < k.NumStates(); s++ {
		if !inner[s] {
			out[s] = true
		}
	}
	return out
}

func (f ctlAnd) eval(k *Kripke, pred [][]int) StateSet {
	if len(f.fs) == 0 {
		return ctlTrue{}.eval(k, pred)
	}
	out := f.fs[0].eval(k, pred)
	for _, g := range f.fs[1:] {
		gs := g.eval(k, pred)
		for s := range out {
			if !gs[s] {
				delete(out, s)
			}
		}
	}
	return out
}

func (f ctlEX) eval(k *Kripke, pred [][]int) StateSet {
	inner := f.f.eval(k, pred)
	out := make(StateSet)
	for s := 0; s < k.NumStates(); s++ {
		for _, t := range k.Successors(s) {
			if inner[t] {
				out[s] = true
				break
			}
		}
	}
	return out
}

// eval computes the least fixpoint of E[a U b]: start from b, add states
// in a with a successor already in the set.
func (f ctlEU) eval(k *Kripke, pred [][]int) StateSet {
	aSet := f.a.eval(k, pred)
	out := f.b.eval(k, pred)
	work := out.Sorted()
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range pred[t] {
			if !out[s] && aSet[s] {
				out[s] = true
				work = append(work, s)
			}
		}
	}
	return out
}

// eval computes the greatest fixpoint of EG f: start from f-states,
// repeatedly remove states with no successor inside the set.
func (f ctlEG) eval(k *Kripke, pred [][]int) StateSet {
	out := f.f.eval(k, pred)
	changed := true
	for changed {
		changed = false
		for s := range out {
			ok := false
			for _, t := range k.Successors(s) {
				if out[t] {
					ok = true
					break
				}
			}
			if !ok {
				delete(out, s)
				changed = true
			}
		}
	}
	return out
}

// --- strings ---

func (ctlTrue) String() string  { return "true" }
func (f ctlAP) String() string  { return string(f.p) }
func (f ctlNot) String() string { return "!" + f.f.String() }

func (f ctlAnd) String() string {
	if len(f.fs) == 0 {
		return "true"
	}
	parts := make([]string, len(f.fs))
	for i, g := range f.fs {
		parts[i] = g.String()
	}
	return "(" + strings.Join(parts, " & ") + ")"
}

func (f ctlEX) String() string { return "EX " + f.f.String() }
func (f ctlEU) String() string { return fmt.Sprintf("E[%s U %s]", f.a, f.b) }
func (f ctlEG) String() string { return "EG " + f.f.String() }

// CheckCTL returns the set of states satisfying f.
func CheckCTL(k *Kripke, f CTLFormula) StateSet {
	return f.eval(k, k.predecessors())
}

// Check reports whether every initial state satisfies f. A structure
// with no initial states vacuously satisfies everything; callers should
// set initial states.
func Check(k *Kripke, f CTLFormula) bool {
	sat := CheckCTL(k, f)
	for _, s := range k.initial {
		if !sat[s] {
			return false
		}
	}
	return true
}

// Counterexamples returns the initial states violating f, sorted.
func Counterexamples(k *Kripke, f CTLFormula) []int {
	sat := CheckCTL(k, f)
	var out []int
	for _, s := range k.initial {
		if !sat[s] {
			out = append(out, s)
		}
	}
	return out
}
