// Package consensus implements Raft (leader election, log replication,
// commitment) as the coordination kernel for groups of edge nodes. The
// paper argues that resilient IoT requires control and coordination
// facilities at the software-component level, without a central point of
// failure (§V): an edge group running consensus keeps making control
// decisions while any minority of its members — or the cloud uplink —
// is unavailable, which is exactly the property the Figure 3 benchmark
// measures.
//
// Persistence model: each Node keeps its Raft persistent state
// (currentTerm, votedFor, log) across simulated crashes, mirroring a
// real deployment's stable storage; volatile state (role, leadership,
// indices) is rebuilt on recovery.
package consensus

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// Command is an opaque state-machine command carried in the log.
type Command any

// ApplyFunc consumes committed commands in log order.
type ApplyFunc func(index uint64, cmd Command)

// Role is a Raft role.
type Role int

// Raft roles.
const (
	Follower Role = iota + 1
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Config tunes timing. Zero fields take defaults suited to edge LANs.
type Config struct {
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's AppendEntries period.
	HeartbeatInterval time.Duration
	// MaxEntriesPerMessage caps entries in one AppendEntries.
	MaxEntriesPerMessage int
	// DisablePreVote turns off the PreVote phase (Raft §9.6). With
	// PreVote (the default), a node that timed out — e.g. isolated by
	// a partition — first asks peers whether they *would* vote for it
	// without touching any terms; while peers still hear a healthy
	// leader they refuse, so the node's term never inflates and its
	// return does not depose the leader.
	DisablePreVote bool
	// CheckQuorum makes a leader surrender leadership when it has not
	// heard AppendEntries responses from a quorum within
	// ElectionTimeoutMax: a leader stranded on the minority side of a
	// partition stops believing its own lease instead of serving stale
	// reads/placements forever. Off by default.
	CheckQuorum bool
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 150 * time.Millisecond
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 300 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.MaxEntriesPerMessage == 0 {
		c.MaxEntriesPerMessage = 64
	}
	return c
}

// entry is one log slot.
type entry struct {
	Term uint64
	Cmd  Command
}

// Wire messages.

type requestVoteMsg struct {
	Term         uint64
	Candidate    simnet.NodeID
	LastLogIndex uint64
	LastLogTerm  uint64
}

type requestVoteResp struct {
	Term    uint64
	Granted bool
}

// preVoteMsg probes electability without changing persistent state on
// either side.
type preVoteMsg struct {
	Term         uint64 // the term the candidate would start
	Candidate    simnet.NodeID
	LastLogIndex uint64
	LastLogTerm  uint64
}

type preVoteResp struct {
	Term    uint64
	Granted bool
}

type appendEntriesMsg struct {
	Term         uint64
	Leader       simnet.NodeID
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []entry
	LeaderCommit uint64
}

type appendEntriesResp struct {
	Term       uint64
	Success    bool
	MatchIndex uint64
}

// RegisterWire registers the protocol's message types with a wire
// codec (e.g. realnet's gob transport). Applications must additionally
// register the concrete types of the commands they propose.
func RegisterWire(register func(any)) {
	register(requestVoteMsg{})
	register(requestVoteResp{})
	register(preVoteMsg{})
	register(preVoteResp{})
	register(appendEntriesMsg{})
	register(appendEntriesResp{})
	register(entry{})
}

func (m requestVoteMsg) Size() int    { return 48 }
func (m requestVoteResp) Size() int   { return 16 }
func (m preVoteMsg) Size() int        { return 48 }
func (m preVoteResp) Size() int       { return 16 }
func (m appendEntriesMsg) Size() int  { return 56 + 64*len(m.Entries) }
func (m appendEntriesResp) Size() int { return 24 }

// Envelope kinds: every fixed-size protocol message also has a
// simnet.Envelope encoding, used when the port supports allocation-free
// sends (simulated endpoints). Entry-carrying AppendEntries keeps the
// boxed form — it carries a slice. The Bytes fields below mirror the
// Size() methods above so traffic accounting is representation-
// independent.
const (
	envPreVote uint16 = iota + 1
	envPreVoteResp
	envRequestVote
	envRequestVoteResp
	envAppendHeartbeat // appendEntriesMsg with no entries
	envAppendResp
)

// Node is one Raft participant. Construct with New.
type Node struct {
	ep simnet.Port
	// ec is ep's envelope extension when available; fixed-size protocol
	// messages then travel without per-message heap allocation.
	ec    simnet.EnvelopeCarrier
	peers []simnet.NodeID // all group members including self
	cfg   Config
	apply ApplyFunc

	// Persistent state (survives crashes — stable storage).
	currentTerm uint64
	votedFor    simnet.NodeID
	log         []entry // log[0] is a sentinel; real entries start at 1

	// Volatile state.
	role        Role
	leaderID    simnet.NodeID
	commitIndex uint64
	lastApplied uint64
	// nextIndex/matchIndex are indexed by peer position in the sorted
	// peers slice (see peerIdx); they are touched on every append and
	// every ack, and a slice index beats a map hash there.
	nextIndex  []uint64
	matchIndex []uint64
	selfIdx    int // this node's position in peers
	votes      map[simnet.NodeID]bool
	preVotes   map[simnet.NodeID]bool
	// lastLeaderContact is when a valid AppendEntries last arrived;
	// pre-votes are refused while a leader is recent.
	lastLeaderContact time.Duration
	// peerContact is, on the leader, when each peer's last
	// AppendEntries response arrived (indexed like matchIndex).
	// QuorumContact derives quorum connectivity from it.
	peerContact    []time.Duration
	contactScratch []time.Duration

	electionTimer *simnet.Timer
	heartbeat     *simnet.Ticker
	started       bool
	// electionFn is n.onElectionTimeout bound once at construction;
	// resetElectionTimer runs on every heartbeat, and re-binding the
	// method value there would allocate a closure each time.
	electionFn func()
	// matchScratch is reused by advanceCommit to rank match indices
	// without a per-call allocation.
	matchScratch []uint64

	onLeaderChange []func(leader simnet.NodeID)

	bus *obs.Bus
	// proposedAt tracks when each still-uncommitted proposal was
	// accepted, populated only while the bus has subscribers, so commit
	// latency can be published when advanceCommit passes the index.
	proposedAt map[uint64]time.Duration
}

// New constructs a Raft node over ep, coordinating with peers (which
// must include the node's own ID). apply receives committed commands;
// it may be nil.
func New(ep simnet.Port, peers []simnet.NodeID, cfg Config, apply ApplyFunc) *Node {
	ps := make([]simnet.NodeID, len(peers))
	copy(ps, peers)
	slices.Sort(ps)
	n := &Node{
		ep:    ep,
		peers: ps,
		selfIdx: func() int {
			for i, id := range ps {
				if id == ep.ID() {
					return i
				}
			}
			return -1
		}(),
		cfg:   cfg.withDefaults(),
		apply: apply,
		log:   make([]entry, 1), // sentinel
		role:  Follower,
	}
	n.electionFn = n.onElectionTimeout
	ep.OnMessage(n.handle)
	if ec, ok := ep.(simnet.EnvelopeCarrier); ok {
		n.ec = ec
		ec.OnEnvelope(n.handleEnv)
	}
	ep.OnUp(n.onRecover)
	ep.OnDown(n.onCrash)
	return n
}

// Start arms the node's election timer.
func (n *Node) Start() {
	n.started = true
	n.becomeFollower(n.currentTerm, "")
}

// Role returns the node's current role.
func (n *Node) Role() Role { return n.role }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.currentTerm }

// Leader returns the last known leader's ID ("" if unknown).
func (n *Node) Leader() simnet.NodeID { return n.leaderID }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LogLen returns the number of real entries in the log.
func (n *Node) LogLen() int { return len(n.log) - 1 }

// CommittedCommands returns a copy of the committed command prefix, in
// log order.
func (n *Node) CommittedCommands() []Command {
	out := make([]Command, 0, n.commitIndex)
	for i := uint64(1); i <= n.commitIndex; i++ {
		out = append(out, n.log[i].Cmd)
	}
	return out
}

// OnLeaderChange registers a callback invoked when this node observes a
// leadership change (including itself winning).
func (n *Node) OnLeaderChange(fn func(leader simnet.NodeID)) {
	n.onLeaderChange = append(n.onLeaderChange, fn)
}

// SetBus attaches an observability bus. Elections are published as
// "raft.election", leadership wins as "raft.leader", and per-proposal
// commit latency as "raft.commit" spans. A nil bus keeps the node
// silent.
func (n *Node) SetBus(bus *obs.Bus) { n.bus = bus }

// Propose appends a command if this node is the leader. It returns the
// assigned log index and true, or 0 and false when not leader (callers
// should redirect to Leader()).
func (n *Node) Propose(cmd Command) (uint64, bool) {
	if n.role != Leader || !n.ep.Up() {
		return 0, false
	}
	n.log = append(n.log, entry{Term: n.currentTerm, Cmd: cmd})
	idx := n.lastLogIndex()
	if n.bus.Active() {
		if n.proposedAt == nil {
			n.proposedAt = make(map[uint64]time.Duration)
		}
		n.proposedAt[idx] = n.bus.Now()
	}
	n.matchIndex[n.selfIdx] = idx
	n.broadcastAppend()
	// Single-node groups commit immediately.
	n.advanceCommit()
	return idx, true
}

// --- role transitions ---

func (n *Node) onCrash() {
	// Volatile state is lost. Timers are endpoint-scoped and silent
	// while down; explicit stop keeps the queue clean.
	n.stopTimers()
}

func (n *Node) onRecover() {
	if !n.started {
		return
	}
	n.commitIndex = 0
	n.lastApplied = 0
	// Restart the quorum-contact clock: a node that was down for
	// longer than the island grace window should get a fresh grace
	// period on recovery, not flap straight into island mode. Behavior-
	// neutral otherwise — pre-vote refusal reads this only while
	// leaderID is set, and becomeFollower below clears it.
	n.lastLeaderContact = n.ep.Now()
	n.becomeFollower(n.currentTerm, "")
}

func (n *Node) stopTimers() {
	if n.electionTimer != nil {
		n.electionTimer.Stop()
		n.electionTimer = nil
	}
	if n.heartbeat != nil {
		n.heartbeat.Stop()
		n.heartbeat = nil
	}
}

func (n *Node) becomeFollower(term uint64, leader simnet.NodeID) {
	prevLeader := n.leaderID
	if term > n.currentTerm {
		n.currentTerm = term
		n.votedFor = ""
	}
	n.role = Follower
	n.leaderID = leader
	n.preVotes = nil
	n.proposedAt = nil // commit latency is a leader-side measurement
	if n.heartbeat != nil {
		n.heartbeat.Stop()
		n.heartbeat = nil
	}
	n.resetElectionTimer()
	if leader != "" && leader != prevLeader {
		n.notifyLeader(leader)
	}
}

func (n *Node) notifyLeader(leader simnet.NodeID) {
	for _, fn := range n.onLeaderChange {
		fn(leader)
	}
}

func (n *Node) resetElectionTimer() {
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin
	if span > 0 {
		d += time.Duration(n.ep.Rand().Int63n(int64(span)))
	}
	n.electionTimer = n.ep.After(d, n.electionFn)
}

// onElectionTimeout starts an election, preceded by a PreVote round
// unless disabled.
func (n *Node) onElectionTimeout() {
	if n.cfg.DisablePreVote {
		n.startElection()
		return
	}
	n.preVotes = map[simnet.NodeID]bool{n.ep.ID(): true}
	n.resetElectionTimer()
	if n.ec != nil {
		env := simnet.Envelope{
			Kind: envPreVote, A: n.currentTerm + 1, S: n.ep.ID(),
			B: n.lastLogIndex(), C: n.lastLogTerm(), Bytes: 48,
		}
		for _, p := range n.peers {
			if p != n.ep.ID() {
				n.ec.SendEnvelope(p, env)
			}
		}
	} else {
		msg := preVoteMsg{
			Term:         n.currentTerm + 1,
			Candidate:    n.ep.ID(),
			LastLogIndex: n.lastLogIndex(),
			LastLogTerm:  n.lastLogTerm(),
		}
		for _, p := range n.peers {
			if p != n.ep.ID() {
				n.ep.Send(p, msg)
			}
		}
	}
	n.maybeStartRealElection()
}

func (n *Node) maybeStartRealElection() {
	if n.preVotes == nil || len(n.preVotes) < n.quorum() {
		return
	}
	n.preVotes = nil
	n.startElection()
}

func (n *Node) startElection() {
	n.currentTerm++
	n.bus.Emit("raft.election", string(n.ep.ID()), 0, 0, "candidate at term %d", n.currentTerm)
	n.role = Candidate
	n.votedFor = n.ep.ID()
	n.leaderID = ""
	n.preVotes = nil
	n.votes = map[simnet.NodeID]bool{n.ep.ID(): true}
	n.resetElectionTimer()
	if n.ec != nil {
		env := simnet.Envelope{
			Kind: envRequestVote, A: n.currentTerm, S: n.ep.ID(),
			B: n.lastLogIndex(), C: n.lastLogTerm(), Bytes: 48,
		}
		for _, p := range n.peers {
			if p != n.ep.ID() {
				n.ec.SendEnvelope(p, env)
			}
		}
	} else {
		msg := requestVoteMsg{
			Term:         n.currentTerm,
			Candidate:    n.ep.ID(),
			LastLogIndex: n.lastLogIndex(),
			LastLogTerm:  n.lastLogTerm(),
		}
		for _, p := range n.peers {
			if p != n.ep.ID() {
				n.ep.Send(p, msg)
			}
		}
	}
	n.maybeWin()
}

func (n *Node) maybeWin() {
	if n.role != Candidate || len(n.votes) < n.quorum() {
		return
	}
	n.role = Leader
	n.leaderID = n.ep.ID()
	n.nextIndex = make([]uint64, len(n.peers))
	n.matchIndex = make([]uint64, len(n.peers))
	for i := range n.peers {
		n.nextIndex[i] = n.lastLogIndex() + 1
		n.matchIndex[i] = 0
	}
	n.matchIndex[n.selfIdx] = n.lastLogIndex()
	// Winning means a quorum just granted votes: contact is fresh.
	if n.peerContact == nil {
		n.peerContact = make([]time.Duration, len(n.peers))
	}
	for i := range n.peerContact {
		n.peerContact[i] = n.ep.Now()
	}
	if n.electionTimer != nil {
		n.electionTimer.Stop()
		n.electionTimer = nil
	}
	n.broadcastAppend()
	n.heartbeat = n.ep.Every(n.cfg.HeartbeatInterval, n.heartbeatTick)
	n.bus.Emit("raft.leader", string(n.ep.ID()), 0, 0, "won term %d", n.currentTerm)
	n.notifyLeader(n.ep.ID())
}

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

// heartbeatTick is the leader's periodic duty: surrender a stale lease
// when CheckQuorum is on, then replicate.
func (n *Node) heartbeatTick() {
	if n.cfg.CheckQuorum && n.role == Leader &&
		n.ep.Now()-n.QuorumContact() > n.cfg.ElectionTimeoutMax {
		n.bus.Emit("raft.election", string(n.ep.ID()), 0, 0, "leader stepping down: quorum contact lost at term %d", n.currentTerm)
		n.becomeFollower(n.currentTerm, "")
		return
	}
	n.broadcastAppend()
}

// QuorumContact reports the last time this node was demonstrably in
// contact with a cluster quorum: for a follower or candidate, the last
// valid AppendEntries from a leader; for a leader, the quorum-th most
// recent AppendEntries response across peers (counting itself as
// always current). `now - QuorumContact()` growing beyond a grace
// window is the island-mode trigger (core wiring, DESIGN.md §9).
func (n *Node) QuorumContact() time.Duration {
	if n.role != Leader || n.peerContact == nil {
		return n.lastLeaderContact
	}
	times := n.contactScratch[:0]
	for i := range n.peers {
		if i == n.selfIdx {
			times = append(times, n.ep.Now())
		} else {
			times = append(times, n.peerContact[i])
		}
	}
	slices.Sort(times)
	n.contactScratch = times
	// The quorum-th newest of an ascending sort is times[len-quorum].
	return times[len(times)-n.quorum()]
}

func (n *Node) lastLogIndex() uint64 { return uint64(len(n.log) - 1) }

func (n *Node) lastLogTerm() uint64 { return n.log[len(n.log)-1].Term }

// --- replication ---

func (n *Node) broadcastAppend() {
	if n.role != Leader {
		return
	}
	for _, p := range n.peers {
		if p != n.ep.ID() {
			n.sendAppend(p)
		}
	}
}

// peerIdx resolves a peer ID to its position in the sorted peers
// slice. Groups are small, and the IDs are shared strings, so a linear
// scan with its pointer-equality fast path beats hashing.
func (n *Node) peerIdx(id simnet.NodeID) int {
	for i, p := range n.peers {
		if p == id {
			return i
		}
	}
	return -1
}

func (n *Node) sendAppend(to simnet.NodeID) {
	next := n.nextIndex[n.peerIdx(to)]
	if next < 1 {
		next = 1
	}
	prevIdx := next - 1
	prevTerm := n.log[prevIdx].Term
	var entries []entry
	if n.lastLogIndex() >= next {
		end := next + uint64(n.cfg.MaxEntriesPerMessage)
		if end > n.lastLogIndex()+1 {
			end = n.lastLogIndex() + 1
		}
		entries = append(entries, n.log[next:end]...)
	}
	if len(entries) == 0 && n.ec != nil {
		// Heartbeat: fixed shape, so it can travel allocation-free.
		n.ec.SendEnvelope(to, simnet.Envelope{
			Kind: envAppendHeartbeat, A: n.currentTerm, S: n.ep.ID(),
			B: prevIdx, C: prevTerm, D: n.commitIndex, Bytes: 56,
		})
		return
	}
	n.ep.Send(to, appendEntriesMsg{
		Term:         n.currentTerm,
		Leader:       n.ep.ID(),
		PrevLogIndex: prevIdx,
		PrevLogTerm:  prevTerm,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	})
}

func (n *Node) advanceCommit() {
	if n.role != Leader {
		return
	}
	// Find the highest index replicated on a quorum with an entry from
	// the current term.
	matches := n.matchScratch[:0]
	matches = append(matches, n.matchIndex...)
	slices.Sort(matches)
	n.matchScratch = matches
	// The k-th highest of an ascending sort is matches[len-k].
	candidate := matches[len(matches)-n.quorum()]
	if candidate > n.commitIndex && n.log[candidate].Term == n.currentTerm {
		prev := n.commitIndex
		n.commitIndex = candidate
		for i := prev + 1; i <= candidate; i++ {
			if at, ok := n.proposedAt[i]; ok {
				delete(n.proposedAt, i)
				n.bus.Publish(obs.Event{
					At: at, Dur: n.bus.Now() - at,
					Kind: "raft.commit", Node: string(n.ep.ID()),
					Detail: fmt.Sprintf("index %d term %d", i, n.currentTerm),
				})
			}
		}
		n.applyCommitted()
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		if n.apply != nil {
			n.apply(n.lastApplied, n.log[n.lastApplied].Cmd)
		}
	}
}

// --- message handling ---

func (n *Node) handle(from simnet.NodeID, msg simnet.Message) {
	if !n.started {
		return
	}
	switch m := msg.(type) {
	case requestVoteMsg:
		n.handleRequestVote(from, m)
	case requestVoteResp:
		n.handleVoteResp(from, m)
	case preVoteMsg:
		n.handlePreVote(from, m)
	case preVoteResp:
		n.handlePreVoteResp(from, m)
	case appendEntriesMsg:
		n.handleAppendEntries(from, m)
	case appendEntriesResp:
		n.handleAppendResp(from, m)
	}
}

// handleEnv is the envelope counterpart of handle: it reconstructs the
// protocol struct on the stack (no allocation) and delegates to the
// same per-message handlers, so the two representations are
// behaviorally identical.
func (n *Node) handleEnv(from simnet.NodeID, e *simnet.Envelope) {
	if !n.started {
		return
	}
	switch e.Kind {
	case envPreVote:
		n.handlePreVote(from, preVoteMsg{Term: e.A, Candidate: e.S, LastLogIndex: e.B, LastLogTerm: e.C})
	case envPreVoteResp:
		n.handlePreVoteResp(from, preVoteResp{Term: e.A, Granted: e.Flag})
	case envRequestVote:
		n.handleRequestVote(from, requestVoteMsg{Term: e.A, Candidate: e.S, LastLogIndex: e.B, LastLogTerm: e.C})
	case envRequestVoteResp:
		n.handleVoteResp(from, requestVoteResp{Term: e.A, Granted: e.Flag})
	case envAppendHeartbeat:
		n.handleAppendEntries(from, appendEntriesMsg{Term: e.A, Leader: e.S, PrevLogIndex: e.B, PrevLogTerm: e.C, LeaderCommit: e.D})
	case envAppendResp:
		n.handleAppendResp(from, appendEntriesResp{Term: e.A, Success: e.Flag, MatchIndex: e.B})
	}
}

// handlePreVote grants a pre-vote without touching currentTerm or
// votedFor: the probe succeeds only if the candidate could win a real
// election AND this node has not heard from a leader recently.
func (n *Node) handlePreVote(from simnet.NodeID, m preVoteMsg) {
	leaderRecent := n.leaderID != "" &&
		n.ep.Now()-n.lastLeaderContact < n.cfg.ElectionTimeoutMin
	granted := m.Term >= n.currentTerm && n.logUpToDate(m.LastLogIndex, m.LastLogTerm) && !leaderRecent
	if n.ec != nil {
		n.ec.SendEnvelope(from, simnet.Envelope{Kind: envPreVoteResp, A: n.currentTerm, Flag: granted, Bytes: 16})
		return
	}
	n.ep.Send(from, preVoteResp{Term: n.currentTerm, Granted: granted})
}

func (n *Node) handlePreVoteResp(from simnet.NodeID, m preVoteResp) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term, "")
		return
	}
	if n.preVotes == nil || !m.Granted {
		return
	}
	n.preVotes[from] = true
	n.maybeStartRealElection()
}

func (n *Node) handleRequestVote(from simnet.NodeID, m requestVoteMsg) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term, "")
	}
	granted := false
	if m.Term == n.currentTerm && (n.votedFor == "" || n.votedFor == m.Candidate) && n.logUpToDate(m.LastLogIndex, m.LastLogTerm) {
		granted = true
		n.votedFor = m.Candidate
		n.resetElectionTimer()
	}
	if n.ec != nil {
		n.ec.SendEnvelope(from, simnet.Envelope{Kind: envRequestVoteResp, A: n.currentTerm, Flag: granted, Bytes: 16})
		return
	}
	n.ep.Send(from, requestVoteResp{Term: n.currentTerm, Granted: granted})
}

// logUpToDate implements Raft's §5.4.1 voting restriction.
func (n *Node) logUpToDate(lastIdx, lastTerm uint64) bool {
	if lastTerm != n.lastLogTerm() {
		return lastTerm > n.lastLogTerm()
	}
	return lastIdx >= n.lastLogIndex()
}

func (n *Node) handleVoteResp(from simnet.NodeID, m requestVoteResp) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term, "")
		return
	}
	if n.role != Candidate || m.Term < n.currentTerm || !m.Granted {
		return
	}
	n.votes[from] = true
	n.maybeWin()
}

// sendAppendResp replies to an AppendEntries, allocation-free when the
// port supports envelopes.
func (n *Node) sendAppendResp(to simnet.NodeID, success bool, match uint64) {
	if n.ec != nil {
		n.ec.SendEnvelope(to, simnet.Envelope{Kind: envAppendResp, A: n.currentTerm, Flag: success, B: match, Bytes: 24})
		return
	}
	n.ep.Send(to, appendEntriesResp{Term: n.currentTerm, Success: success, MatchIndex: match})
}

func (n *Node) handleAppendEntries(from simnet.NodeID, m appendEntriesMsg) {
	if m.Term < n.currentTerm {
		n.sendAppendResp(from, false, 0)
		return
	}
	// Valid leader for this term.
	n.becomeFollower(m.Term, m.Leader)
	n.lastLeaderContact = n.ep.Now()
	if m.PrevLogIndex > n.lastLogIndex() || n.log[m.PrevLogIndex].Term != m.PrevLogTerm {
		n.sendAppendResp(from, false, 0)
		return
	}
	// Append, truncating conflicts.
	idx := m.PrevLogIndex
	for _, e := range m.Entries {
		idx++
		if idx <= n.lastLogIndex() {
			if n.log[idx].Term != e.Term {
				n.log = n.log[:idx]
				n.log = append(n.log, e)
			}
			continue
		}
		n.log = append(n.log, e)
	}
	match := m.PrevLogIndex + uint64(len(m.Entries))
	if m.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(m.LeaderCommit, n.lastLogIndex())
		n.applyCommitted()
	}
	n.sendAppendResp(from, true, match)
}

func (n *Node) handleAppendResp(from simnet.NodeID, m appendEntriesResp) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term, "")
		return
	}
	if n.role != Leader || m.Term < n.currentTerm {
		return
	}
	fi := n.peerIdx(from)
	if fi < 0 {
		return
	}
	if n.peerContact != nil {
		// Any same-term response — success or log mismatch — proves the
		// peer is reachable.
		n.peerContact[fi] = n.ep.Now()
	}
	if m.Success {
		if m.MatchIndex > n.matchIndex[fi] {
			n.matchIndex[fi] = m.MatchIndex
		}
		n.nextIndex[fi] = n.matchIndex[fi] + 1
		n.advanceCommit()
		if n.nextIndex[fi] <= n.lastLogIndex() {
			n.sendAppend(from)
		}
		return
	}
	// Log mismatch: back off and retry.
	if n.nextIndex[fi] > 1 {
		n.nextIndex[fi]--
	}
	n.sendAppend(from)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
