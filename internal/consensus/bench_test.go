package consensus

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// BenchmarkCommitThroughput measures commands committed per simulated
// group through a 5-node Raft cluster.
func BenchmarkCommitThroughput(b *testing.B) {
	sim := simnet.New(simnet.WithSeed(1), simnet.WithDefaultLatency(2*time.Millisecond))
	ids := []simnet.NodeID{"r0", "r1", "r2", "r3", "r4"}
	applied := 0
	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		nodes[i] = New(sim.AddNode(id), ids, Config{}, func(uint64, Command) { applied++ })
		nodes[i].Start()
	}
	// Elect a leader.
	var leader *Node
	for sim.Now() < 3*time.Second && leader == nil {
		sim.RunUntil(sim.Now() + 100*time.Millisecond)
		for _, n := range nodes {
			if n.Role() == Leader {
				leader = n
				break
			}
		}
	}
	if leader == nil {
		b.Fatal("no leader")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := leader.Propose(i); !ok {
			b.Fatal("propose refused")
		}
		// Let replication settle every batch of 64.
		if i%64 == 63 {
			sim.RunUntil(sim.Now() + 200*time.Millisecond)
		}
	}
	sim.RunUntil(sim.Now() + time.Second)
	b.StopTimer()
	if leader.CommitIndex() != uint64(b.N) {
		b.Fatalf("committed %d of %d", leader.CommitIndex(), b.N)
	}
}

// BenchmarkElection measures a full leader election from cold start.
func BenchmarkElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := simnet.New(simnet.WithSeed(int64(i+1)), simnet.WithDefaultLatency(2*time.Millisecond))
		ids := []simnet.NodeID{"r0", "r1", "r2"}
		nodes := make([]*Node, len(ids))
		for j, id := range ids {
			nodes[j] = New(sim.AddNode(id), ids, Config{}, nil)
			nodes[j].Start()
		}
		elected := false
		for sim.Now() < 5*time.Second && !elected {
			sim.RunUntil(sim.Now() + 50*time.Millisecond)
			for _, n := range nodes {
				if n.Role() == Leader {
					elected = true
					break
				}
			}
		}
		if !elected {
			b.Fatalf("no leader elected (iter %d)", i)
		}
	}
}
