package consensus

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

// group builds an n-node Raft group and starts every node.
func group(t *testing.T, sim *simnet.Sim, n int) []*Node {
	t.Helper()
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(fmt.Sprintf("r%d", i))
	}
	nodes := make([]*Node, n)
	for i := range ids {
		nodes[i] = New(sim.AddNode(ids[i]), ids, Config{}, nil)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	return nodes
}

func leaders(nodes []*Node, sim *simnet.Sim) []*Node {
	var out []*Node
	for _, nd := range nodes {
		if nd.Role() == Leader && sim.NodeUp(nd.ep.ID()) {
			out = append(out, nd)
		}
	}
	return out
}

func waitForLeader(t *testing.T, sim *simnet.Sim, nodes []*Node, deadline time.Duration) *Node {
	t.Helper()
	for sim.Now() < deadline {
		sim.RunUntil(sim.Now() + 50*time.Millisecond)
		if ls := leaders(nodes, sim); len(ls) == 1 {
			return ls[0]
		}
	}
	t.Fatalf("no single leader by %v", deadline)
	return nil
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("role names wrong")
	}
	if Role(7).String() != "role(7)" {
		t.Fatal("unknown role name wrong")
	}
}

func TestSingleNodeBecomesLeaderAndCommits(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(1))
	var applied []Command
	id := simnet.NodeID("solo")
	nd := New(sim.AddNode(id), []simnet.NodeID{id}, Config{}, func(_ uint64, c Command) {
		applied = append(applied, c)
	})
	nd.Start()
	sim.RunUntil(time.Second)
	if nd.Role() != Leader {
		t.Fatalf("role = %v, want leader", nd.Role())
	}
	if _, ok := nd.Propose("cmd1"); !ok {
		t.Fatal("Propose refused")
	}
	sim.RunUntil(2 * time.Second)
	if len(applied) != 1 || applied[0] != "cmd1" {
		t.Fatalf("applied = %v, want [cmd1]", applied)
	}
}

func TestThreeNodesElectExactlyOneLeader(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(2), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 3)
	waitForLeader(t, sim, nodes, 3*time.Second)
	// All nodes agree on the leader.
	lead := nodes[0].Leader()
	for i, nd := range nodes {
		if nd.Leader() != lead {
			t.Fatalf("node %d sees leader %q, others see %q", i, nd.Leader(), lead)
		}
	}
}

func TestReplicationReachesAllNodes(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(3), simnet.WithDefaultLatency(2*time.Millisecond))
	ids := []simnet.NodeID{"r0", "r1", "r2"}
	appliedBy := map[simnet.NodeID][]Command{}
	nodes := make([]*Node, 3)
	for i, id := range ids {
		id := id
		nodes[i] = New(sim.AddNode(id), ids, Config{}, func(_ uint64, c Command) {
			appliedBy[id] = append(appliedBy[id], c)
		})
		nodes[i].Start()
	}
	lead := waitForLeader(t, sim, nodes, 3*time.Second)
	for i := 0; i < 5; i++ {
		if _, ok := lead.Propose(fmt.Sprintf("c%d", i)); !ok {
			t.Fatalf("Propose %d refused", i)
		}
		sim.RunUntil(sim.Now() + 100*time.Millisecond)
	}
	sim.RunUntil(sim.Now() + time.Second)
	for _, id := range ids {
		got := appliedBy[id]
		if len(got) != 5 {
			t.Fatalf("node %s applied %d commands, want 5: %v", id, len(got), got)
		}
		for i := range got {
			if got[i] != fmt.Sprintf("c%d", i) {
				t.Fatalf("node %s applied %v", id, got)
			}
		}
	}
}

func TestProposeOnFollowerRefused(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(4), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 3)
	lead := waitForLeader(t, sim, nodes, 3*time.Second)
	for _, nd := range nodes {
		if nd == lead {
			continue
		}
		if _, ok := nd.Propose("x"); ok {
			t.Fatal("follower accepted a proposal")
		}
	}
}

func TestLeaderCrashTriggersReelection(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(5), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 5)
	lead := waitForLeader(t, sim, nodes, 3*time.Second)
	oldTerm := lead.Term()
	sim.SetDown(lead.ep.ID(), true)
	newLead := waitForLeader(t, sim, nodes, sim.Now()+5*time.Second)
	if newLead == lead {
		t.Fatal("crashed node still counted as leader")
	}
	if newLead.Term() <= oldTerm {
		t.Fatalf("new term %d not greater than old %d", newLead.Term(), oldTerm)
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(6), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 5)
	lead := waitForLeader(t, sim, nodes, 3*time.Second)

	// Isolate the leader with one follower (minority side).
	var minority, majority []simnet.NodeID
	minority = append(minority, lead.ep.ID())
	for _, nd := range nodes {
		if nd != lead && len(minority) < 2 {
			minority = append(minority, nd.ep.ID())
		} else if nd != lead {
			majority = append(majority, nd.ep.ID())
		}
	}
	sim.Partition(minority, majority)

	before := lead.CommitIndex()
	lead.Propose("doomed")
	sim.RunUntil(sim.Now() + 2*time.Second)
	if lead.CommitIndex() != before {
		t.Fatal("minority leader committed an entry")
	}

	// Majority side elects a fresh leader that can commit.
	var majNodes []*Node
	for _, nd := range nodes {
		for _, id := range majority {
			if nd.ep.ID() == id {
				majNodes = append(majNodes, nd)
			}
		}
	}
	newLead := waitForLeader(t, sim, majNodes, sim.Now()+5*time.Second)
	if _, ok := newLead.Propose("ok"); !ok {
		t.Fatal("majority leader refused proposal")
	}
	sim.RunUntil(sim.Now() + time.Second)
	if newLead.CommitIndex() == 0 {
		t.Fatal("majority leader failed to commit")
	}

	// Heal: the doomed entry must be superseded everywhere.
	sim.HealPartition()
	sim.RunUntil(sim.Now() + 3*time.Second)
	for i, nd := range nodes {
		cmds := nd.CommittedCommands()
		for _, c := range cmds {
			if c == "doomed" {
				t.Fatalf("node %d committed the doomed entry: %v", i, cmds)
			}
		}
	}
}

func TestCrashedLeaderRejoinsAsFollowerAndCatchesUp(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(7), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 3)
	lead := waitForLeader(t, sim, nodes, 3*time.Second)
	lead.Propose("a")
	sim.RunUntil(sim.Now() + 500*time.Millisecond)

	sim.SetDown(lead.ep.ID(), true)
	newLead := waitForLeader(t, sim, nodes, sim.Now()+5*time.Second)
	newLead.Propose("b")
	sim.RunUntil(sim.Now() + 500*time.Millisecond)

	sim.SetDown(lead.ep.ID(), false)
	sim.RunUntil(sim.Now() + 3*time.Second)

	cmds := lead.CommittedCommands()
	if len(cmds) != 2 || cmds[0] != "a" || cmds[1] != "b" {
		t.Fatalf("rejoined node committed %v, want [a b]", cmds)
	}
	if lead.Role() == Leader && newLead.Role() == Leader {
		t.Fatal("two leaders after rejoin")
	}
}

func TestCommittedPrefixConsistencyUnderChaos(t *testing.T) {
	// Safety property: across random crashes and recoveries, all nodes'
	// committed sequences are prefixes of one another.
	sim := simnet.New(simnet.WithSeed(8), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 5)

	proposals := 0
	tick := func() {
		if ls := leaders(nodes, sim); len(ls) == 1 {
			proposals++
			ls[0].Propose(fmt.Sprintf("p%d", proposals))
		}
	}
	// Random crash/recover chaos via the simulator directly.
	rng := sim.Rand()
	for step := 0; step < 200; step++ {
		sim.RunUntil(sim.Now() + 100*time.Millisecond)
		tick()
		if step%10 == 5 {
			victim := nodes[rng.Intn(len(nodes))]
			sim.SetDown(victim.ep.ID(), true)
		}
		if step%10 == 9 {
			for _, nd := range nodes {
				sim.SetDown(nd.ep.ID(), false)
			}
		}
	}
	for _, nd := range nodes {
		sim.SetDown(nd.ep.ID(), false)
	}
	sim.RunUntil(sim.Now() + 5*time.Second)

	if proposals == 0 {
		t.Fatal("no proposals made")
	}
	// Find the longest committed sequence, check all are prefixes.
	var longest []Command
	for _, nd := range nodes {
		if c := nd.CommittedCommands(); len(c) > len(longest) {
			longest = c
		}
	}
	if len(longest) == 0 {
		t.Fatal("nothing committed under chaos")
	}
	for i, nd := range nodes {
		c := nd.CommittedCommands()
		for j := range c {
			if c[j] != longest[j] {
				t.Fatalf("node %d diverges at %d: %v vs %v", i, j, c[j], longest[j])
			}
		}
	}
}

func TestConsistencyUnderLossAndDuplication(t *testing.T) {
	// Raft must stay safe when the network both loses and duplicates
	// datagrams: duplicate votes must not double-count, duplicate
	// AppendEntries must be idempotent.
	sim := simnet.New(simnet.WithSeed(21), simnet.WithDefaultLatency(2*time.Millisecond),
		simnet.WithDefaultLoss(0.1), simnet.WithDuplicateProb(0.2))
	nodes := group(t, sim, 5)
	lead := waitForLeader(t, sim, nodes, 10*time.Second)
	for i := 0; i < 20; i++ {
		if ls := leaders(nodes, sim); len(ls) == 1 {
			ls[0].Propose(fmt.Sprintf("c%d", i))
		}
		sim.RunUntil(sim.Now() + 200*time.Millisecond)
	}
	sim.RunUntil(sim.Now() + 3*time.Second)

	var longest []Command
	for _, nd := range nodes {
		if c := nd.CommittedCommands(); len(c) > len(longest) {
			longest = c
		}
	}
	if len(longest) == 0 {
		t.Fatal("nothing committed under loss+duplication")
	}
	seen := map[Command]bool{}
	for _, c := range longest {
		if seen[c] {
			t.Fatalf("command %v committed twice", c)
		}
		seen[c] = true
	}
	for i, nd := range nodes {
		c := nd.CommittedCommands()
		for j := range c {
			if c[j] != longest[j] {
				t.Fatalf("node %d diverges at %d", i, j)
			}
		}
	}
	_ = lead
}

func TestOnLeaderChangeFires(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(9), simnet.WithDefaultLatency(2*time.Millisecond))
	ids := []simnet.NodeID{"r0", "r1", "r2"}
	var changes []simnet.NodeID
	nodes := make([]*Node, 3)
	for i, id := range ids {
		nodes[i] = New(sim.AddNode(id), ids, Config{}, nil)
	}
	nodes[0].OnLeaderChange(func(l simnet.NodeID) { changes = append(changes, l) })
	for _, nd := range nodes {
		nd.Start()
	}
	waitForLeader(t, sim, nodes, 3*time.Second)
	if len(changes) == 0 {
		t.Fatal("no leader-change notification")
	}
}

func TestDeterministicElections(t *testing.T) {
	run := func() (simnet.NodeID, uint64) {
		sim := simnet.New(simnet.WithSeed(42), simnet.WithDefaultLatency(2*time.Millisecond))
		nodes := group(t, sim, 5)
		lead := waitForLeader(t, sim, nodes, 3*time.Second)
		return lead.ep.ID(), lead.Term()
	}
	id1, t1 := run()
	id2, t2 := run()
	if id1 != id2 || t1 != t2 {
		t.Fatalf("elections not deterministic: %s/%d vs %s/%d", id1, t1, id2, t2)
	}
}

func TestPreVotePreventsDisruptionByIsolatedNode(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(11), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 5)
	lead := waitForLeader(t, sim, nodes, 3*time.Second)
	termBefore := lead.Term()

	// Isolate one follower for a long stretch: it times out over and
	// over, but PreVote keeps its term from inflating.
	var isolated *Node
	for _, nd := range nodes {
		if nd != lead {
			isolated = nd
			break
		}
	}
	sim.Partition([]simnet.NodeID{isolated.ep.ID()})
	sim.RunUntil(sim.Now() + 20*time.Second)
	if isolated.Term() > termBefore {
		t.Fatalf("isolated node inflated its term to %d despite PreVote", isolated.Term())
	}

	// Healing must not depose the healthy leader.
	sim.HealPartition()
	sim.RunUntil(sim.Now() + 5*time.Second)
	if lead.Role() != Leader {
		t.Fatal("healthy leader deposed by rejoining node")
	}
	if lead.Term() != termBefore {
		t.Fatalf("term changed %d → %d on heal", termBefore, lead.Term())
	}
}

func TestWithoutPreVoteIsolatedNodeDisrupts(t *testing.T) {
	// The control experiment: with PreVote disabled, the isolated
	// node's term inflates and its return forces a new election.
	sim := simnet.New(simnet.WithSeed(11), simnet.WithDefaultLatency(2*time.Millisecond))
	ids := make([]simnet.NodeID, 5)
	nodes := make([]*Node, 5)
	for i := range ids {
		ids[i] = simnet.NodeID(fmt.Sprintf("r%d", i))
	}
	for i := range ids {
		nodes[i] = New(sim.AddNode(ids[i]), ids, Config{DisablePreVote: true}, nil)
		nodes[i].Start()
	}
	lead := waitForLeader(t, sim, nodes, 3*time.Second)
	termBefore := lead.Term()

	var isolated *Node
	for _, nd := range nodes {
		if nd != lead {
			isolated = nd
			break
		}
	}
	sim.Partition([]simnet.NodeID{isolated.ep.ID()})
	sim.RunUntil(sim.Now() + 20*time.Second)
	if isolated.Term() <= termBefore {
		t.Fatalf("isolated node did not inflate its term without PreVote (%d)", isolated.Term())
	}
	sim.HealPartition()
	newLead := waitForLeader(t, sim, nodes, sim.Now()+5*time.Second)
	if newLead.Term() <= termBefore {
		t.Fatalf("term did not advance on heal: %d", newLead.Term())
	}
}

func TestPreVoteStillElectsWhenLeaderDies(t *testing.T) {
	// PreVote must not block legitimate elections.
	sim := simnet.New(simnet.WithSeed(12), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := group(t, sim, 3)
	lead := waitForLeader(t, sim, nodes, 3*time.Second)
	sim.SetDown(lead.ep.ID(), true)
	newLead := waitForLeader(t, sim, nodes, sim.Now()+5*time.Second)
	if newLead == lead {
		t.Fatal("no new leader elected with PreVote enabled")
	}
}

func TestMessageSizes(t *testing.T) {
	if (requestVoteMsg{}).Size() != 48 || (requestVoteResp{}).Size() != 16 || (appendEntriesResp{}).Size() != 24 {
		t.Fatal("unexpected fixed sizes")
	}
	with := appendEntriesMsg{Entries: []entry{{}, {}}}.Size()
	without := appendEntriesMsg{}.Size()
	if with <= without {
		t.Fatal("entries must add to message size")
	}
}

// groupWith builds an n-node Raft group with a shared config.
func groupWith(t *testing.T, sim *simnet.Sim, n int, cfg Config) []*Node {
	t.Helper()
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(fmt.Sprintf("r%d", i))
	}
	nodes := make([]*Node, n)
	for i := range ids {
		nodes[i] = New(sim.AddNode(ids[i]), ids, cfg, nil)
	}
	for _, nd := range nodes {
		nd.Start()
	}
	return nodes
}

// TestCheckQuorumLeaderStepsDownWhenIsolated strands a leader on the
// minority side of a partition: with CheckQuorum it must surrender
// leadership within ElectionTimeoutMax of losing quorum contact —
// the signal the island guard keys off — instead of reigning over a
// one-node fiefdom forever.
func TestCheckQuorumLeaderStepsDownWhenIsolated(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(9), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := groupWith(t, sim, 3, Config{CheckQuorum: true})
	lead := waitForLeader(t, sim, nodes, 3*time.Second)

	var rest []simnet.NodeID
	for _, nd := range nodes {
		if nd != lead {
			rest = append(rest, nd.ep.ID())
		}
	}
	sim.Partition([]simnet.NodeID{lead.ep.ID()}, rest)
	sim.RunUntil(sim.Now() + time.Second)
	if lead.Role() == Leader {
		t.Fatal("isolated leader kept leadership with CheckQuorum on")
	}
	if stale := sim.Now() - lead.QuorumContact(); stale < time.Second {
		t.Fatalf("QuorumContact only %v stale after a 1s isolation", stale)
	}

	// The majority side elects its own leader; after healing there is
	// exactly one, and its quorum contact stays fresh.
	sim.HealPartition()
	lead2 := waitForLeader(t, sim, nodes, sim.Now()+3*time.Second)
	sim.RunUntil(sim.Now() + time.Second)
	if ls := leaders(nodes, sim); len(ls) != 1 {
		t.Fatalf("%d leaders after heal", len(ls))
	}
	if stale := sim.Now() - lead2.QuorumContact(); stale > 300*time.Millisecond {
		t.Fatalf("healthy leader's QuorumContact is %v stale", stale)
	}
}

// TestWithoutCheckQuorumIsolatedLeaderPersists pins the contrast: with
// the knob off (the default every pinned journal runs under), the same
// isolation leaves the old leader in place — the legacy behavior the
// determinism contract depends on.
func TestWithoutCheckQuorumIsolatedLeaderPersists(t *testing.T) {
	sim := simnet.New(simnet.WithSeed(9), simnet.WithDefaultLatency(2*time.Millisecond))
	nodes := groupWith(t, sim, 3, Config{})
	lead := waitForLeader(t, sim, nodes, 3*time.Second)

	var rest []simnet.NodeID
	for _, nd := range nodes {
		if nd != lead {
			rest = append(rest, nd.ep.ID())
		}
	}
	sim.Partition([]simnet.NodeID{lead.ep.ID()}, rest)
	sim.RunUntil(sim.Now() + time.Second)
	if lead.Role() != Leader {
		t.Fatal("isolated leader stepped down without CheckQuorum")
	}
}
