package obs

import (
	"net/http"
)

// Handler serves the registry at /metrics (Prometheus text format) and
// a liveness probe at /healthz. healthy may be nil, in which case the
// probe always succeeds.
func Handler(reg *Registry, healthy func() bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Expose(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil && !healthy() {
			http.Error(w, "unhealthy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
