package obs

import (
	"net/http"
)

// Handler serves the registry at /metrics (Prometheus text format), a
// liveness probe at /healthz, and a readiness probe at /readyz. The
// probes follow the Kubernetes convention: liveness means the process
// is up (restart it when this fails), readiness means it can do useful
// work (withhold traffic until this passes — e.g. a node that has not
// yet joined its cluster is alive but not ready). Either check may be
// nil, in which case that probe always succeeds.
func Handler(reg *Registry, healthy, ready func() bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Expose(w)
	})
	mux.HandleFunc("/healthz", probe(healthy, "unhealthy"))
	mux.HandleFunc("/readyz", probe(ready, "not ready"))
	return mux
}

func probe(check func() bool, failMsg string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if check != nil && !check() {
			http.Error(w, failMsg, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	}
}
