// Package obs is the unified observability layer: a structured event
// bus with causal spans, Prometheus-style metric exposition, and a
// Chrome trace-event exporter. The paper defines resilience as "the
// persistence of reliable requirements satisfaction when facing
// change"; that persistence is only credible evidence if every
// reported recovery can be traced to its cause (fault injected →
// detector fired → MAPE planned → actuator executed). This package is
// the substrate that makes the causal chain visible, in simulation and
// on real networks alike.
//
// Design constraints, in order:
//
//  1. Zero dependencies beyond the standard library, so every protocol
//     package can publish without import cycles or new requirements.
//  2. Near-free when nobody listens: Publish and Emit check an atomic
//     subscriber count and return before any allocation or formatting.
//     Instrumentation stays compiled into hot paths permanently.
//  3. Virtual-time aware: a Bus reads time from an injected Clock, so
//     the same instrumented code reports simulated time under simnet
//     and wall-clock time under realnet.
//  4. Concurrency-safe: simnet runs single-threaded, but realnet hosts
//     publish from an event-loop goroutine while HTTP scrapers and
//     tests read concurrently.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock reads the current time as an offset from an epoch (simulation
// start or process start). It must be safe for concurrent use when the
// bus is shared across goroutines.
type Clock func() time.Duration

// Event is one structured observation on the bus. Events with Dur > 0
// describe a completed span [At, At+Dur); events with Dur == 0 are
// instants. Span and Parent carry the causal chain: an event with
// Parent set was caused by the event (or span) carrying that ID.
type Event struct {
	At     time.Duration // start time (virtual or wall, per the bus clock)
	Dur    time.Duration // span duration; 0 for instant events
	Kind   string        // dotted taxonomy, e.g. "gossip.suspect", "mape.cycle"
	Node   string        // originating node; "" for system-level events
	Span   uint64        // this event's span ID; 0 if none
	Parent uint64        // causal parent span ID; 0 if root
	Detail string        // human-readable specifics
}

// Bus is a typed event bus. The zero value is not usable; construct
// with NewBus. A nil *Bus is safe to publish to (every method no-ops),
// so instrumented packages need no nil checks of their own.
type Bus struct {
	clock    Clock
	nextSpan atomic.Uint64
	// active counts live subscriptions; the Publish/Emit fast path is
	// a single atomic load of this counter.
	active atomic.Int32

	mu   sync.RWMutex
	subs []*Subscription
}

// NewBus constructs a bus reading time from clock. A nil clock falls
// back to wall-clock time since construction.
func NewBus(clock Clock) *Bus {
	b := &Bus{}
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	b.clock = clock
	return b
}

// Now returns the bus's current time (0 on a nil bus).
func (b *Bus) Now() time.Duration {
	if b == nil {
		return 0
	}
	return b.clock()
}

// Active reports whether at least one subscriber is attached. Callers
// with expensive event construction (formatting, extra bookkeeping)
// should gate it on Active; Publish and Emit perform the same check
// internally.
func (b *Bus) Active() bool {
	return b != nil && b.active.Load() > 0
}

// NewSpanID allocates a fresh span identifier. IDs are allocated even
// while no subscriber listens so that causal chains stay consistent
// across subscribe/unsubscribe boundaries; the cost is one atomic add.
func (b *Bus) NewSpanID() uint64 {
	if b == nil {
		return 0
	}
	return b.nextSpan.Add(1)
}

// Publish delivers ev to every subscriber. With no subscribers it is a
// single atomic load. Events with a zero At are stamped with the bus
// clock.
func (b *Bus) Publish(ev Event) {
	if b == nil || b.active.Load() == 0 {
		return
	}
	if ev.At == 0 {
		ev.At = b.clock()
	}
	b.mu.RLock()
	for _, s := range b.subs {
		s.deliver(ev)
	}
	b.mu.RUnlock()
}

// Emit publishes an instant event, formatting the detail lazily: with
// no subscribers it returns before fmt.Sprintf runs.
func (b *Bus) Emit(kind, node string, span, parent uint64, format string, args ...any) {
	if b == nil || b.active.Load() == 0 {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	b.Publish(Event{Kind: kind, Node: node, Span: span, Parent: parent, Detail: detail})
}

// Span is an in-flight causal span. The zero Span (returned when no
// subscriber listens) is inert: End on it does nothing.
type Span struct {
	ID     uint64
	Parent uint64
	Kind   string
	Node   string
	start  time.Duration
	bus    *Bus
}

// StartSpan opens a span. When the bus has no subscribers it returns
// the zero Span, so span-based instrumentation costs one atomic load
// on the idle path.
func (b *Bus) StartSpan(kind, node string, parent uint64) Span {
	if b == nil || b.active.Load() == 0 {
		return Span{}
	}
	return Span{
		ID:     b.nextSpan.Add(1),
		Parent: parent,
		Kind:   kind,
		Node:   node,
		start:  b.clock(),
		bus:    b,
	}
}

// Live reports whether the span was started against an active bus.
func (s Span) Live() bool { return s.bus != nil }

// End closes the span, publishing it as one event covering [start,
// now). The detail is formatted lazily.
func (s Span) End(format string, args ...any) {
	if s.bus == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	end := s.bus.clock()
	s.bus.Publish(Event{
		At:     s.start,
		Dur:    end - s.start,
		Kind:   s.Kind,
		Node:   s.Node,
		Span:   s.ID,
		Parent: s.Parent,
		Detail: detail,
	})
}

// Subscription is one attached consumer: either a ring buffer drained
// with Events, or a callback installed by SubscribeFunc.
type Subscription struct {
	bus *Bus
	fn  func(Event) // callback mode; nil in ring mode

	mu      sync.Mutex
	buf     []Event // ring storage (ring mode)
	next    int     // write cursor
	full    bool
	dropped uint64
	closed  bool
}

// DefaultRingSize is the ring capacity used when Subscribe is called
// with a non-positive size.
const DefaultRingSize = 1024

// Subscribe attaches a ring-buffered subscriber keeping the newest n
// events (older ones are overwritten and counted as dropped). Use for
// bounded "recent events" views that tolerate loss.
func (b *Bus) Subscribe(n int) *Subscription {
	if n <= 0 {
		n = DefaultRingSize
	}
	s := &Subscription{bus: b, buf: make([]Event, n)}
	b.attach(s)
	return s
}

// SubscribeFunc attaches a callback invoked synchronously for every
// published event. The callback must be fast, must tolerate concurrent
// invocation when the bus is shared across goroutines, and must not
// subscribe or close subscriptions (the bus lock is held).
func (b *Bus) SubscribeFunc(fn func(Event)) *Subscription {
	s := &Subscription{bus: b, fn: fn}
	b.attach(s)
	return s
}

func (b *Bus) attach(s *Subscription) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	b.active.Add(1)
}

// Close detaches the subscription. Ring contents remain drainable
// after Close; further published events are not delivered.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	b := s.bus
	if b == nil {
		return
	}
	b.mu.Lock()
	for i, sub := range b.subs {
		if sub == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.mu.Unlock()
	b.active.Add(-1)
}

func (s *Subscription) deliver(ev Event) {
	if s.fn != nil {
		s.fn(ev)
		return
	}
	s.mu.Lock()
	if s.full {
		s.dropped++
	}
	s.buf[s.next] = ev
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Events drains the ring, returning buffered events oldest-first and
// resetting it. Callback subscriptions return nil.
func (s *Subscription) Events() []Event {
	if s.fn != nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Event
	if s.full {
		out = make([]Event, 0, len(s.buf))
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf[:s.next]...)
	}
	s.next = 0
	s.full = false
	return out
}

// Dropped returns how many events were overwritten before being
// drained.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
