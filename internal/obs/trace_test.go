package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestChromeTraceRoundTrip(t *testing.T) {
	clk := &virtualClock{}
	b := NewBus(clk.Now)
	tc := Collect(b)
	defer tc.Close()

	clk.now = 10 * time.Millisecond
	b.Emit("core.fault", "", 1, 0, "crash gw-1")
	b.Publish(Event{
		At: 12 * time.Millisecond, Dur: 30 * time.Millisecond,
		Kind: "mape.cycle", Node: "gw-0", Span: 2, Parent: 1, Detail: "issues=1",
	})
	if tc.Len() != 2 {
		t.Fatalf("collected %d events", tc.Len())
	}

	var buf bytes.Buffer
	if err := tc.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	// 2 thread_name metadata rows ("" and "gw-0") + 2 events.
	if len(trace.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(trace.TraceEvents))
	}

	byName := map[string][]int{}
	for i, ev := range trace.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], i)
	}
	if len(byName["thread_name"]) != 2 {
		t.Fatalf("thread_name rows = %d", len(byName["thread_name"]))
	}
	fault := trace.TraceEvents[byName["core.fault"][0]]
	if fault.Ph != "i" || fault.TS != 10000 || fault.Cat != "core" {
		t.Fatalf("fault event = %+v", fault)
	}
	cycle := trace.TraceEvents[byName["mape.cycle"][0]]
	if cycle.Ph != "X" || cycle.TS != 12000 || cycle.Dur != 30000 {
		t.Fatalf("cycle event = %+v", cycle)
	}
	if cycle.Args["detail"] != "issues=1" || cycle.Args["parent"] != float64(1) {
		t.Fatalf("cycle args = %v", cycle.Args)
	}
	// Distinct nodes land on distinct threads.
	if fault.TID == cycle.TID {
		t.Fatal("system and gw-0 events share a tid")
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	b := NewBus((&virtualClock{}).Now)
	tc := Collect(b)
	b.Emit("k", "n", 0, 0, "d")
	tc.Close()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tc.WriteChromeTraceFile(path); err != nil {
		t.Fatalf("WriteChromeTraceFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tr map[string]any
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("file is not valid JSON: %v", err)
	}
	if _, ok := tr["traceEvents"]; !ok {
		t.Fatal("traceEvents key missing")
	}
}

func TestCategory(t *testing.T) {
	for kind, want := range map[string]string{
		"gossip.suspect": "gossip",
		"raft.commit":    "raft",
		"plain":          "plain",
	} {
		if got := category(kind); got != want {
			t.Errorf("category(%q) = %q, want %q", kind, got, want)
		}
	}
}
