package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// virtualClock is a settable test clock.
type virtualClock struct{ now time.Duration }

func (c *virtualClock) Now() time.Duration { return c.now }

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	b.Publish(Event{Kind: "x"})
	b.Emit("x", "n", 0, 0, "detail %d", 1)
	if b.Active() {
		t.Fatal("nil bus active")
	}
	if b.NewSpanID() != 0 {
		t.Fatal("nil bus allocated a span id")
	}
	sp := b.StartSpan("x", "n", 0)
	if sp.Live() {
		t.Fatal("nil bus returned a live span")
	}
	sp.End("nothing")
	if b.Now() != 0 {
		t.Fatal("nil bus has a clock")
	}
}

func TestPublishWithoutSubscribersIsDropped(t *testing.T) {
	clk := &virtualClock{}
	b := NewBus(clk.Now)
	b.Publish(Event{Kind: "unheard"})
	sub := b.Subscribe(4)
	defer sub.Close()
	if evs := sub.Events(); len(evs) != 0 {
		t.Fatalf("pre-subscription events visible: %v", evs)
	}
}

func TestSubscribeDeliversAndStampsTime(t *testing.T) {
	clk := &virtualClock{now: 5 * time.Second}
	b := NewBus(clk.Now)
	sub := b.Subscribe(8)
	defer sub.Close()
	b.Emit("gossip.suspect", "n1", 0, 0, "member %s", "n2")
	evs := sub.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.At != 5*time.Second || ev.Kind != "gossip.suspect" || ev.Node != "n1" || ev.Detail != "member n2" {
		t.Fatalf("event = %+v", ev)
	}
	// Drained: a second read is empty.
	if len(sub.Events()) != 0 {
		t.Fatal("ring not drained")
	}
}

func TestRingKeepsNewestAndCountsDropped(t *testing.T) {
	b := NewBus((&virtualClock{now: 1}).Now)
	sub := b.Subscribe(3)
	defer sub.Close()
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: "k", Span: uint64(i + 1)})
	}
	evs := sub.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	if evs[0].Span != 3 || evs[2].Span != 5 {
		t.Fatalf("ring kept %v, want spans 3..5 oldest-first", evs)
	}
	if sub.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", sub.Dropped())
	}
}

func TestActiveTracksSubscriptions(t *testing.T) {
	b := NewBus((&virtualClock{}).Now)
	if b.Active() {
		t.Fatal("new bus active")
	}
	s1 := b.Subscribe(1)
	s2 := b.SubscribeFunc(func(Event) {})
	if !b.Active() {
		t.Fatal("bus with subscribers inactive")
	}
	s1.Close()
	s1.Close() // idempotent
	if !b.Active() {
		t.Fatal("one subscriber remains; should be active")
	}
	s2.Close()
	if b.Active() {
		t.Fatal("all closed; should be inactive")
	}
}

func TestSpanCausalChain(t *testing.T) {
	clk := &virtualClock{now: time.Second}
	b := NewBus(clk.Now)
	sub := b.Subscribe(8)
	defer sub.Close()

	root := b.StartSpan("mape.cycle", "gw-0", 0)
	if !root.Live() || root.ID == 0 {
		t.Fatalf("root span = %+v", root)
	}
	b.Emit("mape.issue", "gw-0", 0, root.ID, "R-temp-0")
	clk.now += 20 * time.Millisecond
	root.End("issues=%d", 1)

	evs := sub.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	issue, cycle := evs[0], evs[1]
	if issue.Parent != root.ID {
		t.Fatalf("issue parent = %d, want %d", issue.Parent, root.ID)
	}
	if cycle.Span != root.ID || cycle.Dur != 20*time.Millisecond || cycle.At != time.Second {
		t.Fatalf("cycle event = %+v", cycle)
	}
	if !strings.Contains(cycle.Detail, "issues=1") {
		t.Fatalf("cycle detail = %q", cycle.Detail)
	}
}

func TestSpanOnIdleBusIsFree(t *testing.T) {
	b := NewBus((&virtualClock{}).Now)
	sp := b.StartSpan("x", "n", 0)
	if sp.Live() || sp.ID != 0 {
		t.Fatalf("idle-bus span = %+v", sp)
	}
	sp.End("ignored")
}

func TestSpanIDsRemainUniqueAcrossSubscriptionChurn(t *testing.T) {
	b := NewBus((&virtualClock{}).Now)
	id1 := b.NewSpanID()
	sub := b.Subscribe(1)
	sp := b.StartSpan("x", "", 0)
	sub.Close()
	id2 := b.NewSpanID()
	if id1 == 0 || sp.ID <= id1 || id2 <= sp.ID {
		t.Fatalf("ids not strictly increasing: %d, %d, %d", id1, sp.ID, id2)
	}
}

// TestConcurrentPublish exercises the bus from many goroutines under
// the race detector: realnet nodes publish from their event loops
// while scrapers read.
func TestConcurrentPublish(t *testing.T) {
	b := NewBus(nil)
	var got sync.Map
	fn := b.SubscribeFunc(func(ev Event) { got.Store(ev.Span, true) })
	ring := b.Subscribe(64)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Emit("k", "n", uint64(w*per+i+1), 0, "m")
				_ = b.Active()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			ring.Events()
		}
	}()
	wg.Wait()
	n := 0
	got.Range(func(any, any) bool { n++; return true })
	if n != workers*per {
		t.Fatalf("func subscriber saw %d distinct events, want %d", n, workers*per)
	}
	fn.Close()
	ring.Close()
}

func TestWallClockDefault(t *testing.T) {
	b := NewBus(nil)
	n1 := b.Now()
	time.Sleep(time.Millisecond)
	if n2 := b.Now(); n2 <= n1 {
		t.Fatalf("wall clock did not advance: %v then %v", n1, n2)
	}
}
