package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families (counters, gauges, histograms)
// and renders them in the Prometheus text exposition format. All
// methods are safe for concurrent use; the individual metric handles
// returned are lock-free (counters, gauges) or internally locked
// (histograms), so hot paths never touch the registry mutex after the
// first lookup.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          map[string]interface{} // label signature → metric handle
}

// NewRegistry constructs an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []uint64  // per finite bound, non-cumulative
	inf    uint64
	sum    float64
	count  uint64
}

// DefBuckets is a general-purpose latency bucket layout in seconds.
var DefBuckets = []float64{.001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.sum += v
	h.count++
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// labelSignature renders label pairs canonically ("" for none). labels
// are alternating key, value; an odd trailing key is ignored.
func labelSignature(labels []string) string {
	if len(labels) < 2 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func (r *Registry) lookup(name, help, typ string, labels []string, make func() interface{}) interface{} {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]interface{}{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	m, ok := f.series[sig]
	if !ok {
		m = make()
		f.series[sig] = m
	}
	return m
}

// Counter returns (registering on first use) the counter with the
// given name and label pairs. Repeated calls with the same identity
// return the same handle.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, "counter", labels, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge returns (registering on first use) the gauge with the given
// name and label pairs.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Histogram returns (registering on first use) the histogram with the
// given name, bucket upper bounds (nil takes DefBuckets) and label
// pairs. Bounds are fixed by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.lookup(name, help, "histogram", labels, func() interface{} {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &Histogram{bounds: bs, counts: make([]uint64, len(bs))}
	}).(*Histogram)
}

// Expose writes every registered metric in the Prometheus text format
// (version 0.0.4), families and series sorted for deterministic
// output.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot family structure under the lock; metric values are read
	// afterwards from their own synchronized handles.
	type seriesSnap struct {
		sig string
		m   interface{}
	}
	type famSnap struct {
		name, help, typ string
		series          []seriesSnap
	}
	snaps := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fs := famSnap{name: f.name, help: f.help, typ: f.typ}
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			fs.series = append(fs.series, seriesSnap{sig, f.series[sig]})
		}
		snaps = append(snaps, fs)
	}
	r.mu.Unlock()

	for _, f := range snaps {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := exposeSeries(w, f.name, s.sig, s.m); err != nil {
				return err
			}
		}
	}
	return nil
}

func exposeSeries(w io.Writer, name, sig string, m interface{}) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, sig, v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, sig, formatFloat(v.Value()))
		return err
	case *Histogram:
		v.mu.Lock()
		bounds := v.bounds
		counts := append([]uint64(nil), v.counts...)
		inf, sum, count := v.inf, v.sum, v.count
		v.mu.Unlock()
		cum := uint64(0)
		for i, b := range bounds {
			cum += counts[i]
			if err := writeBucket(w, name, sig, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += inf
		if err := writeBucket(w, name, sig, "+Inf", cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, sig, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, sig, count)
		return err
	default:
		return fmt.Errorf("obs: unknown metric type %T", m)
	}
}

// writeBucket emits one cumulative histogram bucket, splicing the le
// label into the series' label signature.
func writeBucket(w io.Writer, name, sig, le string, cum uint64) error {
	var labels string
	if sig == "" {
		labels = fmt.Sprintf(`{le="%s"}`, le)
	} else {
		labels = sig[:len(sig)-1] + fmt.Sprintf(`,le="%s"}`, le)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labels, cum)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WatchBus subscribes the registry to a bus, counting every event into
// riot_events_total{kind,node} and observing span durations into
// riot_span_seconds{kind}. Close the returned subscription to stop.
func (r *Registry) WatchBus(bus *Bus) *Subscription {
	return bus.SubscribeFunc(func(ev Event) {
		r.Counter("riot_events_total", "observability events by kind", "kind", ev.Kind).Inc()
		if ev.Dur > 0 {
			r.Histogram("riot_span_seconds", "span durations by kind", nil, "kind", ev.Kind).
				Observe(ev.Dur.Seconds())
		}
	})
}
