package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// TraceCollector accumulates every event published while attached and
// exports the run as Chrome trace-event JSON, viewable in
// chrome://tracing or https://ui.perfetto.dev. Unlike ring
// subscriptions it is unbounded: a trace that silently dropped events
// would misrepresent the causal record.
type TraceCollector struct {
	mu     sync.Mutex
	events []Event
	sub    *Subscription
	pid    int // Chrome trace process ID; 0 renders as 1
}

// SetPID sets the process ID stamped on every exported trace event.
// Concurrent experiment workers each collect their own trace; distinct
// PIDs keep the merged view attributable (worker N shows up as process
// N in chrome://tracing). The default PID is 1.
func (tc *TraceCollector) SetPID(pid int) {
	tc.mu.Lock()
	tc.pid = pid
	tc.mu.Unlock()
}

// effectivePID resolves the configured PID, defaulting to 1.
func (tc *TraceCollector) effectivePID() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.pid == 0 {
		return 1
	}
	return tc.pid
}

// Collect attaches a collector to the bus.
func Collect(bus *Bus) *TraceCollector {
	tc := &TraceCollector{}
	tc.sub = bus.SubscribeFunc(func(ev Event) {
		tc.mu.Lock()
		tc.events = append(tc.events, ev)
		tc.mu.Unlock()
	})
	return tc
}

// Close detaches the collector; collected events remain readable.
func (tc *TraceCollector) Close() {
	if tc.sub != nil {
		tc.sub.Close()
	}
}

// Len returns how many events were collected.
func (tc *TraceCollector) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.events)
}

// Events returns a snapshot of the collected events.
func (tc *TraceCollector) Events() []Event {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return append([]Event(nil), tc.events...)
}

// chromeEvent is one entry of the Chrome trace-event format. Spans map
// to complete events (ph "X"), instants to instant events (ph "i"),
// and node names to per-thread metadata (ph "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the trace-event spec.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the collected events as Chrome trace-event
// JSON. Each node becomes one named "thread"; system-level events
// (empty Node) land on thread 0.
func (tc *TraceCollector) WriteChromeTrace(w io.Writer) error {
	events := tc.Events()
	pid := tc.effectivePID()

	// Stable node → tid assignment, sorted for determinism.
	nodes := make(map[string]int)
	var names []string
	for _, ev := range events {
		if _, ok := nodes[ev.Node]; !ok {
			nodes[ev.Node] = 0
			names = append(names, ev.Node)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		nodes[n] = i
	}

	out := make([]chromeEvent, 0, len(events)+len(names))
	for _, n := range names {
		label := n
		if label == "" {
			label = "system"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: nodes[n],
			Args: map[string]any{"name": label},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind,
			Cat:  category(ev.Kind),
			TS:   micros(ev.At),
			PID:  pid,
			TID:  nodes[ev.Node],
		}
		args := map[string]any{}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		if ev.Span != 0 {
			args["span"] = ev.Span
		}
		if ev.Parent != 0 {
			args["parent"] = ev.Parent
		}
		if len(args) > 0 {
			ce.Args = args
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = micros(ev.Dur)
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out = append(out, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// WriteChromeTraceFile writes the trace to path, creating or
// truncating it.
func (tc *TraceCollector) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tc.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// category derives the trace category from the kind's first dotted
// segment ("gossip.suspect" → "gossip").
func category(kind string) string {
	for i := 0; i < len(kind); i++ {
		if kind[i] == '.' {
			return kind[:i]
		}
	}
	return kind
}

func micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}
