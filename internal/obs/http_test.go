package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerServesMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("riot_events_total", "events", "kind", "test").Add(7)
	healthy := true
	srv := httptest.NewServer(Handler(reg, func() bool { return healthy }, nil))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(body, `riot_events_total{kind="test"} 7`) {
		t.Fatalf("metrics body:\n%s", body)
	}

	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	healthy = false
	code, _, _ = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status = %d", code)
	}
}

func TestHandlerNilHealthCheck(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		code, body, _ := get(t, srv, path)
		if code != http.StatusOK || body != "ok\n" {
			t.Fatalf("%s = %d %q", path, code, body)
		}
	}
}

func TestHandlerReadiness(t *testing.T) {
	ready := false
	srv := httptest.NewServer(Handler(NewRegistry(), nil, func() bool { return ready }))
	defer srv.Close()

	// Not ready yet must not affect liveness: the node is up, just not
	// serving traffic.
	code, _, _ := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unready /readyz status = %d", code)
	}
	code, _, _ = get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz while unready = %d", code)
	}

	ready = true
	code, body, _ := get(t, srv, "/readyz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("ready /readyz = %d %q", code, body)
	}
}
