package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerServesMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("riot_events_total", "events", "kind", "test").Add(7)
	healthy := true
	srv := httptest.NewServer(Handler(reg, func() bool { return healthy }, nil))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(body, `riot_events_total{kind="test"} 7`) {
		t.Fatalf("metrics body:\n%s", body)
	}

	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	healthy = false
	code, _, _ = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz status = %d", code)
	}
}

func TestHandlerNilHealthCheck(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		code, body, _ := get(t, srv, path)
		if code != http.StatusOK || body != "ok\n" {
			t.Fatalf("%s = %d %q", path, code, body)
		}
	}
}

// TestHandlerProbeMatrix pins the full healthy × ready contract: the
// liveness and readiness probes are independent axes, so an orchestra-
// tor can distinguish "restart me" (healthz down) from "stop routing
// to me" (readyz down).
func TestHandlerProbeMatrix(t *testing.T) {
	var healthy, ready bool
	srv := httptest.NewServer(Handler(NewRegistry(),
		func() bool { return healthy }, func() bool { return ready }))
	defer srv.Close()

	cases := []struct {
		healthy, ready         bool
		wantHealth, wantReadyz int
	}{
		{false, false, http.StatusServiceUnavailable, http.StatusServiceUnavailable},
		{false, true, http.StatusServiceUnavailable, http.StatusOK},
		{true, false, http.StatusOK, http.StatusServiceUnavailable},
		{true, true, http.StatusOK, http.StatusOK},
	}
	for _, c := range cases {
		healthy, ready = c.healthy, c.ready
		if code, _, _ := get(t, srv, "/healthz"); code != c.wantHealth {
			t.Errorf("healthy=%v ready=%v: /healthz = %d, want %d", c.healthy, c.ready, code, c.wantHealth)
		}
		if code, _, _ := get(t, srv, "/readyz"); code != c.wantReadyz {
			t.Errorf("healthy=%v ready=%v: /readyz = %d, want %d", c.healthy, c.ready, code, c.wantReadyz)
		}
	}
}

// TestHandlerReadyzFlipsOnProbeEvent wires readiness the way riotnode
// does — an atomic flipped by the first acked gossip probe on the bus
// — and checks /readyz turns 200 exactly when the event lands.
func TestHandlerReadyzFlipsOnProbeEvent(t *testing.T) {
	bus := NewBus(nil)
	var joined atomic.Bool
	sub := bus.SubscribeFunc(func(ev Event) {
		if ev.Kind == "gossip.probe" {
			joined.Store(true)
		}
	})
	defer sub.Close()

	srv := httptest.NewServer(Handler(NewRegistry(), nil, joined.Load))
	defer srv.Close()

	if code, _, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before probe = %d, want 503", code)
	}
	bus.Emit("gossip.suspect", "n1", 0, 0, "unrelated event")
	if code, _, _ := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after unrelated event = %d, want 503", code)
	}
	bus.Emit("gossip.probe", "n1", 0, 0, "ack from peer")
	if code, _, _ := get(t, srv, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after probe ack = %d, want 200", code)
	}
}

func TestHandlerReadiness(t *testing.T) {
	ready := false
	srv := httptest.NewServer(Handler(NewRegistry(), nil, func() bool { return ready }))
	defer srv.Close()

	// Not ready yet must not affect liveness: the node is up, just not
	// serving traffic.
	code, _, _ := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unready /readyz status = %d", code)
	}
	code, _, _ = get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz while unready = %d", code)
	}

	ready = true
	code, body, _ := get(t, srv, "/readyz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("ready /readyz = %d %q", code, body)
	}
}
