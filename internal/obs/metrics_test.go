package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.Expose(&b); err != nil {
		t.Fatalf("Expose: %v", err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("riot_faults_total", "faults injected", "kind", "crash")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("value = %d", c.Value())
	}
	// Same identity returns the same handle.
	if r.Counter("riot_faults_total", "faults injected", "kind", "crash") != c {
		t.Fatal("identity lookup returned a different handle")
	}
	out := expose(t, r)
	for _, want := range []string{
		"# HELP riot_faults_total faults injected\n",
		"# TYPE riot_faults_total counter\n",
		`riot_faults_total{kind="crash"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeSetAddAndUnlabeled(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("riot_members_alive", "alive members")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("value = %g", g.Value())
	}
	out := expose(t, r)
	if !strings.Contains(out, "riot_members_alive 3\n") {
		t.Fatalf("unlabeled gauge line missing:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("riot_rtt_seconds", "probe RTT", []float64{0.01, 0.1, 1}, "proto", "gossip")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 5.555 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
	out := expose(t, r)
	for _, want := range []string{
		`riot_rtt_seconds_bucket{proto="gossip",le="0.01"} 1`,
		`riot_rtt_seconds_bucket{proto="gossip",le="0.1"} 2`,
		`riot_rtt_seconds_bucket{proto="gossip",le="1"} 3`,
		`riot_rtt_seconds_bucket{proto="gossip",le="+Inf"} 4`,
		`riot_rtt_seconds_sum{proto="gossip"} 5.555`,
		`riot_rtt_seconds_count{proto="gossip"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscapingAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", "zeta", "a", "alpha", `quote " slash \ nl`+"\n").Inc()
	out := expose(t, r)
	want := `c{alpha="quote \" slash \\ nl\n",zeta="a"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestExposeSortsFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "").Inc()
	r.Counter("aa_total", "").Inc()
	out := expose(t, r)
	if strings.Index(out, "aa_total") > strings.Index(out, "zz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestWatchBusCountsAndObserves(t *testing.T) {
	b := NewBus((&virtualClock{}).Now)
	r := NewRegistry()
	sub := r.WatchBus(b)
	defer sub.Close()
	b.Emit("gossip.suspect", "n1", 0, 0, "x")
	b.Emit("gossip.suspect", "n2", 0, 0, "y")
	b.Publish(Event{Kind: "mape.cycle", Dur: 50 * time.Millisecond})
	if v := r.Counter("riot_events_total", "", "kind", "gossip.suspect").Value(); v != 2 {
		t.Fatalf("suspect count = %d", v)
	}
	h := r.Histogram("riot_span_seconds", "", nil, "kind", "mape.cycle")
	if h.Count() != 1 || h.Sum() != 0.05 {
		t.Fatalf("span histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("riot_ops_total", "ops").Inc()
				r.Gauge("riot_level", "level").Set(float64(i))
				r.Histogram("riot_lat_seconds", "lat", nil).Observe(0.01)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var b strings.Builder
			_ = r.Expose(&b)
		}
	}()
	wg.Wait()
	if v := r.Counter("riot_ops_total", "ops").Value(); v != 800 {
		t.Fatalf("ops = %d", v)
	}
}
