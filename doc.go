// Package repro is a runnable reproduction of "Towards Resilient
// Internet of Things: Vision, Challenges, and Research Roadmap"
// (Tsigkanos, Nastic, Dustdar — ICDCS 2019).
//
// The paper is a vision/roadmap: it defines resilience as the
// persistence of reliable requirements satisfaction when facing
// change, and argues that resilient IoT requires decentralized
// coordination, governed inter-IoT data flows, formally analyzable
// models carried to runtime, and MAPE-K self-adaptation at the edge.
// This repository builds that system — and the three architecture
// generations the paper positions it against — on a deterministic
// discrete-event simulation substrate, then measures all four along
// the paper's five disruption vectors.
//
// Layout:
//
//   - internal/simnet, space, env, device, fault: the simulated world
//   - internal/gossip, consensus, crdt, pubsub: distributed protocols
//   - internal/model, verify: analyzable models and model checking
//   - internal/mape, dataflow, orchestrate, metrics: the resilience
//     machinery of the roadmap
//   - internal/core: the ML1–ML4 archetypes and scenario runner
//   - internal/experiments: one experiment per table/figure
//   - cmd/riotsim, cmd/riotverify, cmd/riotbench: CLI tools
//   - examples/: runnable scenarios using the public surface
//
// The benchmarks in bench_test.go regenerate every table and figure;
// see EXPERIMENTS.md for paper-vs-measured results.
package repro
