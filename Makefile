# Resilient IoT reproduction — common developer targets.

GO ?= go

.PHONY: all build test race cover bench bench-city fuzz experiments examples obs-demo bench-baseline bench-gate bench-serve bench-sync serve-demo determinism metro metro-smoke chaos chaos-replay chaos-verify realnet explain clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One iteration of every table/figure benchmark with metrics.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Four-archetype matrix at the Figure-1 city tier (200 gateways, 5009
# devices, ~10 s). CI smokes the reduced tier with -short.
bench-city:
	$(GO) test -bench BenchmarkCityScaleMatrix -benchmem -benchtime=1x .

# Package-level micro-benchmarks.
microbench:
	$(GO) test -bench=. -benchtime=100x ./internal/...

# Short fuzz pass over the parsers and the topic matcher.
fuzz:
	$(GO) test -fuzz FuzzParseCTL -fuzztime 10s ./internal/verify/
	$(GO) test -fuzz FuzzParseLTL -fuzztime 10s ./internal/verify/
	$(GO) test -fuzz FuzzTopicMatches -fuzztime 10s ./internal/pubsub/

# All experiments at paper-scale parameters (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/riotbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/deviceless
	$(GO) run ./examples/healthcare
	$(GO) run ./examples/energygrid
	$(GO) run ./examples/udpgossip
	$(GO) run ./examples/smartcity

# Regenerate the committed CI bench baseline (after intentional perf
# changes), and the gate CI applies to it.
bench-baseline:
	$(GO) run ./cmd/riotbench -quick -parallel 2 -benchreps 3 -out BENCH_riot.json

bench-gate:
	$(GO) run ./cmd/riotbench -quick -parallel 2 -benchreps 3 -out /tmp/bench.json
	$(GO) run ./scripts BENCH_riot.json /tmp/bench.json

# Serving-path latency only: the 3-node cluster + open-loop load leg.
bench-serve:
	$(GO) run ./cmd/riotbench -quick -benchreps 3 -only serve -out /tmp/bench_serve.json

# Replication bytes-on-wire only: the city and metropolis sync legs
# record sync_bytes, the upward-gated bandwidth metric.
bench-sync:
	$(GO) run ./cmd/riotbench -quick -benchreps 3 -only sync/city -out /tmp/bench_sync_city.json
	$(GO) run ./cmd/riotbench -quick -benchreps 3 -only sync/metro -out /tmp/bench_sync_metro.json

# Two riotnode processes with the HTTP data API, driven by riotload
# for 10 seconds — the README "Serving traffic" walkthrough as one
# command.
serve-demo:
	$(GO) build -o /tmp/riotnode ./cmd/riotnode
	$(GO) build -o /tmp/riotload ./cmd/riotload
	/tmp/riotnode -id a -bind 127.0.0.1:7946 -peers b=127.0.0.1:7947 \
		-serve-addr 127.0.0.1:8080 -duration 15s -interval 5s & \
	/tmp/riotnode -id b -bind 127.0.0.1:7947 -peers a=127.0.0.1:7946 -seeds a \
		-serve-addr 127.0.0.1:8081 -duration 15s -interval 5s & \
	sleep 1 && /tmp/riotload -targets http://127.0.0.1:8080,http://127.0.0.1:8081 \
		-rps 200 -duration 10s -fail-on-5xx -min-writes 1; \
	wait

# Serial vs parallel campaign must print byte-identical journal
# hashes, and the zone-sharded scheduler must print byte-identical
# city-tier hashes at 1, 2 and 4 shards (the shard-invariance gate;
# CI runs the same legs in the metropolis-determinism job).
determinism:
	$(GO) run ./cmd/riotbench -quick -only table12 -seeds 4 -hashes > /tmp/serial.txt
	$(GO) run -race ./cmd/riotbench -quick -only table12 -seeds 4 -parallel 4 -hashes > /tmp/parallel.txt
	diff -u /tmp/serial.txt /tmp/parallel.txt
	$(GO) test -race -run TestSchedulerDifferential ./internal/core/
	$(GO) run ./cmd/riotsim -tier city-smoke -matrix -shards 1 -hash > /tmp/shards1.txt
	$(GO) run ./cmd/riotsim -tier city-smoke -matrix -shards 2 -hash > /tmp/shards2.txt
	$(GO) run -race ./cmd/riotsim -tier city-smoke -matrix -shards 4 -hash > /tmp/shards4.txt
	diff -u /tmp/shards1.txt /tmp/shards2.txt
	diff -u /tmp/shards1.txt /tmp/shards4.txt
	$(GO) test -race -run 'TestShard' ./internal/simnet/ ./internal/core/

# Metropolis tier (1000 zones, ~102k devices; -zones 10000 reaches the
# 1M-device target) on the zone-sharded scheduler. The journal hash is
# shard-count-invariant, so any shard count is a valid run; see
# README "Running the metropolis tier" for the cores/shards tradeoff.
metro:
	$(GO) run ./cmd/riotsim -tier metro -arch ML4 -shards 4 -hash

metro-smoke:
	$(GO) run ./cmd/riotsim -tier metro-smoke -arch ML4 -shards 4 -hash

# Chaos search: sample disruption schedules, shrink every violation to
# a minimal counterexample, save new finds into the committed corpus.
chaos:
	$(GO) run ./cmd/riotchaos search -arch ML1 -budget 25 -parallel 4 -corpus corpus/chaos
	$(GO) run ./cmd/riotchaos search -arch ML4 -budget 25 -parallel 4 -corpus corpus/chaos

# Replay the committed counterexamples; every entry must reproduce its
# recorded failures and journal hash byte-identically.
chaos-replay:
	$(GO) run -race ./cmd/riotchaos replay -corpus corpus/chaos -parallel 4

# Verify the corpus against the hardened profile: ML4 entries must be
# fixed by the resilience mechanisms, ML1 entries must still fail.
# Each entry prints its incident timeline (-explain).
chaos-verify:
	$(GO) run -race ./cmd/riotchaos verify -corpus corpus/chaos -parallel 4 -explain

# Live corpus replay on real loopback UDP sockets: race-enabled realnet
# tests, then every entry replays fully armed at wall-clock scale 0.05
# under both profiles — default-knob runs must still fail, hardened
# runs must match their expectations (no journal hashes: outcome-level
# judging only, DESIGN.md §14). Finally the city smoke tier (365 live
# UDP nodes, hardened ML4) replays a corpus entry and must survive;
# the city needs -scale >= 0.5 on a single core (see DESIGN.md §14).
realnet:
	$(GO) test -race -count=1 ./internal/realnet/
	$(GO) run ./cmd/riotchaos realnet -corpus corpus/chaos -profile both -scale 0.05
	$(GO) run ./cmd/riotchaos realnet -corpus corpus/chaos -profile none -city -scale 0.5

# Explain every corpus entry: R(t) timeline + incident records with
# MTTD/MTTR, as found (default knobs) and under the hardened profile.
explain:
	$(GO) run ./cmd/riotscope corpus -corpus corpus/chaos
	$(GO) run ./cmd/riotscope corpus -corpus corpus/chaos -hardened

# Short traced smart-city run; open trace.json at chrome://tracing.
obs-demo:
	$(GO) run ./cmd/riotsim -arch ML4 -zones 4 -duration 2m -trace trace.json

# Record the outputs checked into the repository root.
record:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem -benchtime=1x . 2>&1 | tee bench_output.txt

clean:
	$(GO) clean -testcache
