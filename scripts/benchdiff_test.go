package main

import (
	"strings"
	"testing"
)

func bf(benches ...bench) benchFile {
	return benchFile{Schema: "riotbench/bench/v1", Benches: benches}
}

func TestDiffWithinThreshold(t *testing.T) {
	base := bf(bench{ID: "table12", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "table12", NsPerOp: 1200, AllocsPerOp: 110})
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "table12") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestDiffNsRegression(t *testing.T) {
	base := bf(bench{ID: "table12", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "table12", NsPerOp: 1300, AllocsPerOp: 100})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns_per_op") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestDiffAllocRegression(t *testing.T) {
	base := bf(bench{ID: "f3", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "f3", NsPerOp: 1000, AllocsPerOp: 200})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs_per_op") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	base := bf(bench{ID: "f1", NsPerOp: 2000, AllocsPerOp: 500})
	cand := bf(bench{ID: "f1", NsPerOp: 900, AllocsPerOp: 50})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("improvement flagged as regression: %v", failures)
	}
}

func TestDiffMissingExperimentFails(t *testing.T) {
	base := bf(bench{ID: "table12", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf()
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestDiffNewExperimentPasses(t *testing.T) {
	base := bf()
	cand := bf(bench{ID: "x9", NsPerOp: 1000, AllocsPerOp: 100})
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("new experiment failed the gate: %v", failures)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "added") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := bf(bench{ID: "f2", NsPerOp: 1000, AllocsPerOp: 0})
	cand := bf(bench{ID: "f2", NsPerOp: 1000, AllocsPerOp: 5})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 {
		t.Fatalf("growth from zero baseline not flagged: %v", failures)
	}
}
