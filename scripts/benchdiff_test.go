package main

import (
	"strings"
	"testing"
)

func bf(benches ...bench) benchFile {
	return benchFile{Schema: "riotbench/bench/v1", Benches: benches}
}

func TestDiffWithinThreshold(t *testing.T) {
	base := bf(bench{ID: "table12", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "table12", NsPerOp: 1200, AllocsPerOp: 110})
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "table12") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestDiffNsRegression(t *testing.T) {
	base := bf(bench{ID: "table12", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "table12", NsPerOp: 1300, AllocsPerOp: 100})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns_per_op") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestDiffAllocRegression(t *testing.T) {
	base := bf(bench{ID: "f3", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "f3", NsPerOp: 1000, AllocsPerOp: 200})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs_per_op") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	base := bf(bench{ID: "f1", NsPerOp: 2000, AllocsPerOp: 500})
	cand := bf(bench{ID: "f1", NsPerOp: 900, AllocsPerOp: 50})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("improvement flagged as regression: %v", failures)
	}
}

func TestDiffMissingExperimentFails(t *testing.T) {
	base := bf(bench{ID: "table12", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf()
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v", failures)
	}
	// The disappearance must be visible in the stdout comparison lines
	// too, mirroring the "added" labeling of new experiments.
	if len(lines) != 1 || !strings.Contains(lines[0], "missing") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestDiffLatencyRegression(t *testing.T) {
	base := bf(bench{ID: "city", NsPerOp: 1000, AllocsPerOp: 100, MTTDP50Ns: 4000, MTTRP99Ns: 9000})
	cand := bf(bench{ID: "city", NsPerOp: 1000, AllocsPerOp: 100, MTTDP50Ns: 6000, MTTRP99Ns: 9000})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "mttd_p50_ns") {
		t.Fatalf("failures = %v", failures)
	}

	// Faster detection/recovery never fails the gate.
	better := bf(bench{ID: "city", NsPerOp: 1000, AllocsPerOp: 100, MTTDP50Ns: 1000, MTTRP99Ns: 10})
	if _, failures := diff(base, better, 0.25); len(failures) != 0 {
		t.Fatalf("latency improvement flagged: %v", failures)
	}
}

func TestDiffLatencyAbsentFromBaselineIgnored(t *testing.T) {
	// A baseline written before latency metrics existed must not gate
	// them (and must not flag growth-from-zero).
	base := bf(bench{ID: "city", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "city", NsPerOp: 1000, AllocsPerOp: 100, MTTDP50Ns: 4000, MTTRP50Ns: 2000})
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("pre-latency baseline gated: %v", failures)
	}
	if len(lines) != 1 {
		t.Fatalf("unexpected latency lines for pre-latency baseline: %v", lines)
	}
}

func TestDiffServeLatencyRegression(t *testing.T) {
	base := bf(bench{ID: "serve", NsPerOp: 1000, AllocsPerOp: 100, LatP50Ns: 200_000, LatP99Ns: 900_000})
	cand := bf(bench{ID: "serve", NsPerOp: 1000, AllocsPerOp: 100, LatP50Ns: 210_000, LatP99Ns: 2_000_000})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "lat_p99_ns") {
		t.Fatalf("failures = %v", failures)
	}

	// Serving faster never fails the gate.
	better := bf(bench{ID: "serve", NsPerOp: 1000, AllocsPerOp: 100, LatP50Ns: 50_000, LatP99Ns: 100_000})
	if _, failures := diff(base, better, 0.25); len(failures) != 0 {
		t.Fatalf("latency improvement flagged: %v", failures)
	}
}

func TestDiffServeLatencyAbsentFromBaselineIgnored(t *testing.T) {
	// A baseline written before the serve leg reported latencies must
	// not gate them (and must not flag growth-from-zero).
	base := bf(bench{ID: "serve", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "serve", NsPerOp: 1000, AllocsPerOp: 100, LatP50Ns: 200_000, LatP99Ns: 900_000})
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("pre-latency baseline gated: %v", failures)
	}
	if len(lines) != 1 {
		t.Fatalf("unexpected latency lines for pre-latency baseline: %v", lines)
	}
}

func TestDiffSyncBytesRegression(t *testing.T) {
	base := bf(bench{ID: "sync/city", NsPerOp: 1000, AllocsPerOp: 100, SyncBytes: 1_500_000})
	cand := bf(bench{ID: "sync/city", NsPerOp: 1000, AllocsPerOp: 100, SyncBytes: 2_500_000})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 || !strings.Contains(failures[0], "sync_bytes") {
		t.Fatalf("failures = %v", failures)
	}

	// Shipping fewer bytes for the same workload never fails the gate.
	better := bf(bench{ID: "sync/city", NsPerOp: 1000, AllocsPerOp: 100, SyncBytes: 500_000})
	if _, failures := diff(base, better, 0.25); len(failures) != 0 {
		t.Fatalf("bytes improvement flagged: %v", failures)
	}
}

func TestDiffSyncBytesAbsentFromBaselineIgnored(t *testing.T) {
	// A baseline written before the sync legs reported bytes-on-wire
	// must not gate them (and must not flag growth-from-zero).
	base := bf(bench{ID: "sync/city", NsPerOp: 1000, AllocsPerOp: 100})
	cand := bf(bench{ID: "sync/city", NsPerOp: 1000, AllocsPerOp: 100, SyncBytes: 1_500_000})
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("pre-bytes baseline gated: %v", failures)
	}
	if len(lines) != 1 {
		t.Fatalf("unexpected sync_bytes lines for pre-bytes baseline: %v", lines)
	}
}

func TestDiffNewExperimentPasses(t *testing.T) {
	base := bf()
	cand := bf(bench{ID: "x9", NsPerOp: 1000, AllocsPerOp: 100})
	lines, failures := diff(base, cand, 0.25)
	if len(failures) != 0 {
		t.Fatalf("new experiment failed the gate: %v", failures)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "added") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := bf(bench{ID: "f2", NsPerOp: 1000, AllocsPerOp: 0})
	cand := bf(bench{ID: "f2", NsPerOp: 1000, AllocsPerOp: 5})
	_, failures := diff(base, cand, 0.25)
	if len(failures) != 1 {
		t.Fatalf("growth from zero baseline not flagged: %v", failures)
	}
}
