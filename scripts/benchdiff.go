// Command benchdiff compares two riotbench bench JSON files (written
// with `riotbench -out`) and exits non-zero when the candidate
// regresses past the threshold. CI runs it against the committed
// baseline:
//
//	go run ./scripts BENCH_riot.json bench.json
//	go run ./scripts -threshold 0.5 BENCH_riot.json bench.json
//
// ns_per_op is machine-dependent, so CI uses a generous threshold;
// allocs_per_op is deterministic for the same code and seed, making it
// the sharp edge of the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type bench struct {
	ID          string  `json:"id"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	Runs        int     `json:"runs"`
	RunsPerSec  float64 `json:"runs_per_sec"`

	// Virtual-time resilience latencies (city tier ML4). Zero means the
	// experiment does not report them; gating starts once a baseline
	// records a non-zero value.
	MTTDP50Ns int64 `json:"mttd_p50_ns,omitempty"`
	MTTDP99Ns int64 `json:"mttd_p99_ns,omitempty"`
	MTTRP50Ns int64 `json:"mttr_p50_ns,omitempty"`
	MTTRP99Ns int64 `json:"mttr_p99_ns,omitempty"`

	// Wall-clock serving-path latencies (serve experiment). Same
	// skip-until-baselined rule as the resilience latencies.
	LatP50Ns int64 `json:"lat_p50_ns,omitempty"`
	LatP99Ns int64 `json:"lat_p99_ns,omitempty"`

	// Replication bytes-on-wire (sync experiments). Deterministic for a
	// given seed; same skip-until-baselined rule.
	SyncBytes int64 `json:"sync_bytes,omitempty"`
}

type benchFile struct {
	Schema  string  `json:"schema"`
	Benches []bench `json:"benches"`
}

func main() {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.25, "allowed fractional regression (0.25 = 25%)")
	fs.Parse(os.Args[1:])
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.25] baseline.json candidate.json")
		os.Exit(2)
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	lines, failures := diff(base, cand, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%:\n", len(failures), *threshold*100)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok (threshold %.0f%%)\n", *threshold*100)
}

func load(path string) (benchFile, error) {
	var f benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != "riotbench/bench/v1" {
		return f, fmt.Errorf("%s: unexpected schema %q", path, f.Schema)
	}
	return f, nil
}

// diff compares candidate against baseline experiment by experiment.
// It returns human-readable comparison lines and the list of
// regressions: a metric exceeding baseline*(1+threshold), or an
// experiment present in the baseline but missing from the candidate.
// Experiments only in the candidate are labeled "added" and never
// fail — new bench IDs (a new scenario tier, a fresh chaos-corpus
// entry) must be able to land before their baseline does; they start
// gating once the regenerated baseline is committed.
func diff(base, cand benchFile, threshold float64) (lines, failures []string) {
	candByID := make(map[string]bench, len(cand.Benches))
	for _, b := range cand.Benches {
		candByID[b.ID] = b
	}
	seen := make(map[string]bool, len(base.Benches))
	for _, b := range base.Benches {
		seen[b.ID] = true
		c, ok := candByID[b.ID]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-8s missing (present in baseline, absent from candidate)", b.ID))
			failures = append(failures, fmt.Sprintf("%s: missing from candidate", b.ID))
			continue
		}
		nsRatio := ratio(float64(c.NsPerOp), float64(b.NsPerOp))
		allocRatio := ratio(float64(c.AllocsPerOp), float64(b.AllocsPerOp))
		lines = append(lines, fmt.Sprintf("%-8s ns/op %12d -> %12d (%+.1f%%)   allocs/op %10d -> %10d (%+.1f%%)",
			b.ID, b.NsPerOp, c.NsPerOp, (nsRatio-1)*100,
			b.AllocsPerOp, c.AllocsPerOp, (allocRatio-1)*100))
		if nsRatio > 1+threshold {
			failures = append(failures, fmt.Sprintf("%s: ns_per_op regressed %.1f%% (%d -> %d)",
				b.ID, (nsRatio-1)*100, b.NsPerOp, c.NsPerOp))
		}
		if allocRatio > 1+threshold {
			failures = append(failures, fmt.Sprintf("%s: allocs_per_op regressed %.1f%% (%d -> %d)",
				b.ID, (allocRatio-1)*100, b.AllocsPerOp, c.AllocsPerOp))
		}
		for _, m := range []struct {
			name       string
			base, cand int64
		}{
			{"mttd_p50_ns", b.MTTDP50Ns, c.MTTDP50Ns},
			{"mttd_p99_ns", b.MTTDP99Ns, c.MTTDP99Ns},
			{"mttr_p50_ns", b.MTTRP50Ns, c.MTTRP50Ns},
			{"mttr_p99_ns", b.MTTRP99Ns, c.MTTRP99Ns},
		} {
			if b.MTTDP50Ns == 0 && b.MTTDP99Ns == 0 && b.MTTRP50Ns == 0 && b.MTTRP99Ns == 0 {
				break // baseline predates resilience latencies for this ID
			}
			r := ratio(float64(m.cand), float64(m.base))
			lines = append(lines, fmt.Sprintf("%-8s %s %12d -> %12d (%+.1f%%)",
				b.ID, m.name, m.base, m.cand, (r-1)*100))
			// Upward drift only: these are virtual-time latencies, so
			// getting faster is always fine.
			if r > 1+threshold {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.1f%% (%d -> %d)",
					b.ID, m.name, (r-1)*100, m.base, m.cand))
			}
		}
		for _, m := range []struct {
			name       string
			base, cand int64
		}{
			{"lat_p50_ns", b.LatP50Ns, c.LatP50Ns},
			{"lat_p99_ns", b.LatP99Ns, c.LatP99Ns},
		} {
			if b.LatP50Ns == 0 && b.LatP99Ns == 0 {
				break // baseline predates serving-path latencies for this ID
			}
			r := ratio(float64(m.cand), float64(m.base))
			lines = append(lines, fmt.Sprintf("%-8s %s %12d -> %12d (%+.1f%%)",
				b.ID, m.name, m.base, m.cand, (r-1)*100))
			// Upward drift only: serving faster is always fine.
			if r > 1+threshold {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %.1f%% (%d -> %d)",
					b.ID, m.name, (r-1)*100, m.base, m.cand))
			}
		}
		if b.SyncBytes != 0 {
			r := ratio(float64(c.SyncBytes), float64(b.SyncBytes))
			lines = append(lines, fmt.Sprintf("%-8s sync_bytes %12d -> %12d (%+.1f%%)",
				b.ID, b.SyncBytes, c.SyncBytes, (r-1)*100))
			// Upward drift only: shipping fewer sync bytes for the same
			// scenario is always fine.
			if r > 1+threshold {
				failures = append(failures, fmt.Sprintf("%s: sync_bytes regressed %.1f%% (%d -> %d)",
					b.ID, (r-1)*100, b.SyncBytes, c.SyncBytes))
			}
		}
	}
	for _, c := range cand.Benches {
		if !seen[c.ID] {
			lines = append(lines, fmt.Sprintf("%-8s added (informational; gates once a baseline is committed)", c.ID))
		}
	}
	return lines, failures
}

// ratio guards against a zero baseline: a zero-cost baseline metric
// only regresses if the candidate is non-zero.
func ratio(cand, base float64) float64 {
	if base == 0 {
		if cand == 0 {
			return 1
		}
		return 2 // any growth from zero reads as a 100% regression
	}
	return cand / base
}
